"""The resilient chunk executor: recovery, bit-identity, deadlines, shm.

These are the acceptance tests of the resilience layer:

* a fault plan that kills a worker mid-solve must not fail the solve —
  chunk retry and the ``processes -> threads -> serial`` ladder complete
  it **bit-identical** to the serial backend, with ``resilience.*``
  counters recording the recovery and no shared-memory leak;
* a solve that exceeds its deadline must raise ``KernelTimeoutError``
  within 2x the budget, with worker processes reaped and ``/dev/shm``
  segments unlinked.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.errors import KernelTimeoutError, ValidationError
from repro.parallel.backends import ProcessBackend, _SharedOperands
from repro.parallel.chunking import contiguous_chunks
from repro.parallel.data_parallel import gsknn_data_parallel
from repro.resilience import FaultPlan, RetryPolicy, solve_chunks_resilient

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs POSIX shared memory"
)


def shm_segments() -> set[str]:
    return set(os.listdir("/dev/shm"))


@pytest.fixture
def problem(cloud):
    q = np.arange(160, dtype=np.intp)
    r = np.arange(cloud.shape[0], dtype=np.intp)
    k = 6
    return cloud, q, r, k, gsknn(cloud, q, r, k)


class TestBitIdentityUnderFaults:
    def test_worker_crash_mid_solve_recovers_bit_identical(
        self, problem, metrics, clean_env
    ):
        """The headline acceptance path: crash_at kills a real worker
        process on every attempt, so recovery must walk the whole
        ladder — and the answer must not change by a single bit."""
        X, q, r, k, truth = problem
        before = shm_segments()
        got = gsknn_data_parallel(
            X, q, r, k,
            p=2, backend="processes",
            fault_plan=FaultPlan(crash_at=(0,)),
            retry=RetryPolicy(backoff_base=0.001),
        )
        assert np.array_equal(got.distances, truth.distances)
        assert np.array_equal(got.indices, truth.indices)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.solves"] == 1
        assert counters["resilience.retries"] >= 1
        assert counters["resilience.fallbacks"] >= 1
        assert counters["resilience.chunks_recovered"] >= 1
        assert counters["resilience.degraded_solves"] == 1
        assert shm_segments() == before

    def test_seeded_crash_plan_threads(self, problem, clean_env):
        X, q, r, k, truth = problem
        got = gsknn_data_parallel(
            X, q, r, k,
            p=2, backend="threads", chunks_per_worker=3,
            fault_plan="seed=101,crash=0.4",
            retry=RetryPolicy(backoff_base=0.001),
        )
        assert np.array_equal(got.distances, truth.distances)
        assert np.array_equal(got.indices, truth.indices)

    def test_certain_alloc_failure_degrades_to_serial(
        self, problem, metrics, clean_env
    ):
        """alloc=1.0 fails every attempt on every rung except the final
        fault-free serial rung — the solve must still complete."""
        X, q, r, k, truth = problem
        got = gsknn_data_parallel(
            X, q, r, k,
            p=2, backend="threads",
            fault_plan=FaultPlan(alloc=1.0),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
        )
        assert np.array_equal(got.distances, truth.distances)
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.fallbacks.serial"] == 1
        assert counters["resilience.faults_injected.alloc"] >= 1

    def test_slow_faults_complete(self, problem, clean_env):
        X, q, r, k, truth = problem
        got = gsknn_data_parallel(
            X, q, r, k,
            p=2, backend="threads",
            fault_plan="seed=5,slow=1.0,slow_ms=1",
        )
        assert np.array_equal(got.distances, truth.distances)

    def test_executor_serial_matches_kernel(self, problem, clean_env):
        X, q, r, k, truth = problem
        chunks = contiguous_chunks(q.size, 4)
        got = solve_chunks_resilient(
            X, q, r, k, chunks, {"variant": 1}, backend="serial", p=1
        )
        want = gsknn(X, q, r, k, variant=1)
        assert np.array_equal(got.distances, want.distances)
        assert np.array_equal(got.indices, want.indices)

    def test_unknown_backend_rejected(self, problem):
        X, q, r, k, _ = problem
        with pytest.raises(ValidationError):
            solve_chunks_resilient(
                X, q, r, k, [(0, q.size)], {}, backend="gpu"
            )


class TestDeadline:
    def test_raises_within_twice_budget(self, problem, clean_env):
        """Cooperative enforcement: every chunk sleeps past the budget,
        and the wait loop's slicing must surface the timeout well before
        2x the budget."""
        X, q, r, k, _ = problem
        budget = 0.25
        t0 = time.perf_counter()
        with pytest.raises(KernelTimeoutError) as excinfo:
            gsknn_data_parallel(
                X, q, r, k,
                p=2, backend="threads",
                deadline=budget,
                fault_plan=FaultPlan(slow=1.0, slow_seconds=3 * budget),
            )
        elapsed = time.perf_counter() - t0
        assert elapsed < 2 * budget
        exc = excinfo.value
        assert exc.budget == budget
        assert "completed" in exc.partial and "total" in exc.partial

    def test_processes_deadline_reaps_workers_and_unlinks(
        self, problem, metrics, clean_env
    ):
        import multiprocessing

        X, q, r, k, _ = problem
        before = shm_segments()
        with pytest.raises(KernelTimeoutError):
            gsknn_data_parallel(
                X, q, r, k,
                p=2, backend="processes",
                deadline=0.3,
                fault_plan=FaultPlan(slow=1.0, slow_seconds=5.0),
            )
        assert shm_segments() == before
        # terminated workers must actually disappear, not grind on
        limit = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < limit:
            time.sleep(0.05)
        assert not multiprocessing.active_children()
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.deadline_hits"] >= 1

    def test_generous_deadline_is_harmless(self, problem, clean_env):
        X, q, r, k, truth = problem
        got = gsknn_data_parallel(
            X, q, r, k, p=2, backend="threads", deadline=60.0
        )
        assert np.array_equal(got.distances, truth.distances)


class TestShmLifecycle:
    def test_partial_export_failure_leaks_nothing(self, cloud, monkeypatch):
        """If the 3rd of 4 segment exports dies, the first two (and the
        failed one) must be unlinked before the error escapes."""
        import repro.parallel.backends as backends

        real = backends._shm_export
        calls = {"n": 0}

        def failing(arr):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("no space left on device")
            return real(arr)

        monkeypatch.setattr(backends, "_shm_export", failing)
        before = shm_segments()
        with pytest.raises(OSError):
            _SharedOperands(
                cloud,
                np.arange(10, dtype=np.intp),
                np.arange(20, dtype=np.intp),
                {},
            )
        assert shm_segments() == before

    def test_generator_close_unlinks(self, cloud, clean_env):
        """solve_chunks closes its generator on any exit — the same path
        a KeyboardInterrupt mid-map takes — and that close must tear
        down the shared-memory session."""
        backend = ProcessBackend(p=2)
        q = np.arange(40, dtype=np.intp)
        r = np.arange(cloud.shape[0], dtype=np.intp)
        before = shm_segments()
        runs = backend._run(cloud, q, r, 4, [(0, 20), (20, 20)], {})
        next(runs)
        assert shm_segments() != before  # session is live
        runs.close()  # simulated interrupt between chunks
        assert shm_segments() == before

    def test_legacy_crash_env_no_leak(self, cloud, monkeypatch, clean_env):
        from repro.errors import BackendError

        monkeypatch.setenv("REPRO_BACKEND_TEST_CRASH_AT", "0")
        before = shm_segments()
        with pytest.raises(BackendError):
            gsknn_data_parallel(
                cloud,
                np.arange(60),
                np.arange(cloud.shape[0]),
                5,
                p=2,
                backend="processes",
            )
        assert shm_segments() == before


class TestNonRetryable:
    def test_validation_error_propagates_immediately(self, cloud, clean_env):
        q = np.arange(40, dtype=np.intp)
        r = np.arange(cloud.shape[0], dtype=np.intp)
        with pytest.raises(ValidationError):
            solve_chunks_resilient(
                cloud, q, r, 4, [(0, 40)], {"variant": 99},
                backend="serial", p=1,
            )
