"""Quickstart: exact kNN with the fused GSKNN kernel.

Generates a synthetic point set, finds each query's 16 nearest
neighbors with both the fused kernel and the GEMM-based baseline,
checks they agree, and prints the timing difference — the paper's
core claim in thirty lines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import gsknn, ref_knn
from repro.data import uniform_hypercube


def main() -> None:
    n_points, dim, k = 20_000, 32, 16
    dataset = uniform_hypercube(n_points, dim, seed=0)
    X = dataset.points

    # GSKNN's "general stride" interface: index arrays into the table,
    # no pre-gathered copies.
    queries = np.arange(0, n_points, 5)     # every 5th point queries
    references = np.arange(n_points)        # against everything

    t0 = time.perf_counter()
    fused = gsknn(X, queries, references, k)
    t_fused = time.perf_counter() - t0

    t0 = time.perf_counter()
    baseline = ref_knn(X, queries, references, k)
    t_baseline = time.perf_counter() - t0

    assert np.allclose(fused.distances, baseline.distances, atol=1e-9)

    print(f"{len(queries)} queries x {n_points} references, d={dim}, k={k}")
    print(f"  GSKNN (fused):       {t_fused * 1e3:7.1f} ms")
    print(f"  GEMM approach:       {t_baseline * 1e3:7.1f} ms")
    print(f"  speedup:             {t_baseline / t_fused:7.2f}x")
    print(f"  first query's neighbors: {fused.indices[0][:5]} ...")
    print(f"  (squared l2 distances:   {np.round(fused.distances[0][:5], 4)})")


if __name__ == "__main__":
    main()
