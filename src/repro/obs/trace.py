"""Span-based structured tracing for the kNN kernels.

The paper's analysis is phase-level — ``T_coll + T_gemm + T_sq2d +
T_heap`` — but a flat phase timer cannot express *where inside the loop
nest* time goes (which 6th-loop block, which variant, nested pack inside
gemm inside gsknn). :class:`Tracer` records **nested timed spans** with
attributes, cheap enough to leave compiled into the hot paths:

* disabled (the default), ``tracer.span(...)`` returns a shared no-op
  context manager — one attribute read and one method call, **zero
  allocations** per use;
* enabled, each span records ``(name, start, duration, thread, depth,
  parent)`` plus user attributes, appended under a lock so concurrent
  kernel threads can share one tracer.

Cross-process traces: span ids embed the recording pid (``pid << 32 |
counter``) so buffers merged from process-pool workers can never
collide with the parent's ids. Workers serialize their buffer with
:meth:`Tracer.export_payload` and ship it back alongside chunk results;
the caller folds it in with :meth:`Tracer.adopt_payload`, which
re-anchors timestamps onto the local epoch (``perf_counter`` is
CLOCK_MONOTONIC on Linux, shared across processes) and re-parents
worker roots under the driver span — one Chrome trace, every worker on
its own pid lane.

Spans opened but never closed (a worker crashed mid-chunk, an export
taken from inside a live solve) are not lost and never raise: exports
emit them as *incomplete* events flagged ``"incomplete": true``, and
:meth:`Tracer.aggregate` skips them rather than counting a duration
that never finished.

Exports:

* :meth:`Tracer.export_chrome` — the ``chrome://tracing`` / Perfetto
  JSON object format (complete "X" events, microsecond timestamps);
* :meth:`Tracer.export_jsonl` — one flat JSON event per line, for
  grep/jq pipelines;
* :meth:`Tracer.aggregate` — per-name call count and total seconds, the
  bridge from a trace to a Table-5-style phase breakdown.

A process-global tracer (:func:`get_tracer`) is what the instrumented
kernels use; :func:`enable_tracing` / :func:`disable_tracing` flip it.
Sampling: ``Tracer(sample_every=N)`` records only every Nth span, so a
benchmark loop can stay instrumented without tracing every iteration.
When a :class:`~repro.obs.context.RequestContext` is active, every
recorded span automatically carries a ``request_id`` attribute.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..errors import ValidationError
from .context import current_request_id

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "span",
]

#: Span ids are ``pid << _PID_SHIFT | per-process counter`` — globally
#: unique across every process that ever contributes to one merged trace.
_PID_SHIFT = 32
_COUNTER_MASK = (1 << _PID_SHIFT) - 1


@dataclass(frozen=True)
class Span:
    """One completed span. Times are seconds on the tracer's clock."""

    span_id: int
    parent_id: int  # -1 for roots
    name: str
    start: float
    duration: float
    thread: int
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    incomplete: bool = False  # opened but never closed (crash, live export)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_event(self) -> dict[str, Any]:
        """Flat JSONL shape (seconds, repo-native keys)."""
        event = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "tid": self.thread,
            "depth": self.depth,
            "pid": self.pid,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        if self.incomplete:
            event["incomplete"] = True
        return event

    def to_chrome_event(self) -> dict[str, Any]:
        """Chrome trace "complete" event (microsecond timestamps).

        The recording process becomes the pid lane; a ``lane`` attr (an
        int — used for simulated ranks) overrides the tid lane so
        logically-parallel actors inside one thread separate visually.
        """
        args = dict(self.attrs)
        tid = self.thread
        lane = args.get("lane")
        if isinstance(lane, int):
            tid = lane
        if self.incomplete:
            args["incomplete"] = True
        return {
            "name": self.name,
            "ph": "X",
            "ts": self.start * 1e6,
            "dur": self.duration * 1e6,
            "pid": self.pid,
            "tid": tid,
            "args": args,
        }


class _NullSpan:
    """Shared no-op context manager — the disabled-tracer hot path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; closing it appends a :class:`Span` to the tracer."""

    __slots__ = (
        "_tracer", "name", "attrs", "_start", "_id", "_parent", "_depth",
        "_forced_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        forced_parent: int | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._forced_parent = forced_parent

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            self._parent = stack[-1]
        elif self._forced_parent is not None:
            self._parent = self._forced_parent
        else:
            self._parent = -1
        self._depth = len(stack)
        self._start = tracer.clock()
        self._id = tracer._open_span(self)
        stack.append(self._id)
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        duration = tracer.clock() - self._start
        stack = tracer._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        tracer._record(
            Span(
                span_id=self._id,
                parent_id=self._parent,
                name=self.name,
                start=self._start - tracer.epoch,
                duration=duration,
                thread=threading.get_ident() & 0xFFFF,
                depth=self._depth,
                attrs=self.attrs,
                pid=tracer.pid,
            )
        )


class Tracer:
    """Thread-safe nested-span recorder with near-zero disabled overhead."""

    def __init__(
        self,
        *,
        enabled: bool = False,
        sample_every: int = 1,
        clock=time.perf_counter,
        pid: int | None = None,
    ) -> None:
        if sample_every < 1:
            raise ValidationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.enabled = bool(enabled)
        self.sample_every = int(sample_every)
        self.clock = clock
        self.epoch = clock()
        self.pid = os.getpid() if pid is None else int(pid)
        self._explicit_pid = pid is not None
        self._spans: list[Span] = []
        self._open: dict[int, _LiveSpan] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0
        # Unsynchronized sampling counter: approximate under threads,
        # which is fine — sampling is a rate, not an exact stride.
        self._sample_tick = 0

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span. Returns a context manager.

        Disabled tracers return a shared no-op instance: no allocation,
        no clock read. This is THE hot-path contract the kernels rely on.
        """
        if not self.enabled:
            return _NULL_SPAN
        if self.sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self.sample_every:
                return _NULL_SPAN
        rid = current_request_id()
        if rid is not None and "request_id" not in attrs:
            attrs["request_id"] = rid
        return _LiveSpan(self, name, attrs)

    def span_under(self, parent_id: int | None, name: str, **attrs: Any):
        """A span explicitly parented under ``parent_id``.

        Thread-pool workers record on the shared tracer but on their own
        per-thread stacks, so their first span would otherwise become a
        root; the submitting thread passes its current span id here to
        keep the tree connected. A ``None`` parent degrades to a plain
        :meth:`span`.
        """
        if not self.enabled:
            return _NULL_SPAN
        rid = current_request_id()
        if rid is not None and "request_id" not in attrs:
            attrs["request_id"] = rid
        return _LiveSpan(self, name, attrs, forced_parent=parent_id)

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on *this* thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open_span(self, live: _LiveSpan) -> int:
        """Allocate a globally-unique id and register the open span."""
        with self._lock:
            pid = os.getpid()
            if pid != self.pid and not self._explicit_pid:
                # Forked child inherited this tracer: adopt the new pid
                # so ids minted here never collide with the parent's.
                self.pid = pid
            self._counter += 1
            sid = (self.pid << _PID_SHIFT) | (self._counter & _COUNTER_MASK)
            self._open[sid] = live
            return sid

    def _next_id(self) -> int:
        """Allocate a globally-unique span id (pid-prefixed counter)."""
        with self._lock:
            self._counter += 1
            return (self.pid << _PID_SHIFT) | (self._counter & _COUNTER_MASK)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._open.pop(span.span_id, None)
            self._spans.append(span)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._open.clear()
            self._counter = 0
        self.epoch = self.clock()

    # -- reading ----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Completed spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def open_spans(self) -> list[Span]:
        """Spans opened but not yet (or never) closed, as incomplete
        :class:`Span` snapshots with duration measured up to *now*."""
        now = self.clock()
        with self._lock:
            live = list(self._open.items())
        out = []
        for sid, ls in live:
            start = getattr(ls, "_start", now)
            out.append(
                Span(
                    span_id=sid,
                    parent_id=getattr(ls, "_parent", -1),
                    name=ls.name,
                    start=start - self.epoch,
                    duration=max(now - start, 0.0),
                    thread=0,
                    depth=getattr(ls, "_depth", 0),
                    attrs=dict(ls.attrs),
                    pid=self.pid,
                    incomplete=True,
                )
            )
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-name totals: ``{name: {count, total_seconds, self_seconds}}``.

        ``self_seconds`` excludes time covered by the span's own children
        — the phase-breakdown view (summing self times over a tree equals
        the root's wall clock, so the table's rows add up). Incomplete
        spans (opened, never closed) are skipped: their durations never
        finished, so counting them would inflate the table.
        """
        spans = [s for s in self.spans if not s.incomplete]
        child_time: dict[int, float] = {}
        for s in spans:
            if s.parent_id != -1:
                child_time[s.parent_id] = (
                    child_time.get(s.parent_id, 0.0) + s.duration
                )
        out: dict[str, dict[str, float]] = {}
        for s in spans:
            row = out.setdefault(
                s.name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
            )
            row["count"] += 1
            row["total_seconds"] += s.duration
            row["self_seconds"] += max(
                s.duration - child_time.get(s.span_id, 0.0), 0.0
            )
        return out

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id == -1]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    # -- cross-process shipping -------------------------------------------

    def export_payload(self, *, clear: bool = True) -> dict[str, Any] | None:
        """Serialize this tracer's buffer for shipping to another process.

        Returns ``None`` when there is nothing to ship. Completed spans
        and still-open spans (flagged incomplete) are both included, so
        a worker that dies between chunks still accounts for the span it
        was inside. ``epoch`` rides along so the receiver can re-anchor
        timestamps onto its own clock origin.
        """
        incomplete = self.open_spans()
        with self._lock:
            done = list(self._spans)
            if clear:
                self._spans.clear()
        if not done and not incomplete:
            return None
        return {
            "pid": self.pid,
            "epoch": self.epoch,
            "events": [s.to_event() for s in done + incomplete],
        }

    def adopt_payload(
        self, payload: dict[str, Any] | None, *, parent_id: int | None = None
    ) -> int:
        """Fold a worker's :meth:`export_payload` into this tracer.

        * timestamps shift by the epoch delta (both clocks are
          CLOCK_MONOTONIC, so worker spans land at their true position
          on the caller's timeline);
        * worker roots (``parent == -1``) re-parent under ``parent_id``
          (the driver span), connecting the merged tree;
        * ids are pid-prefixed so collisions cannot happen by
          construction; as defense-in-depth any incoming id that *does*
          collide with an already-recorded one is remapped to a fresh
          local id (parent links inside the payload follow the remap).

        Returns the number of spans adopted.
        """
        if not payload:
            return 0
        events = payload.get("events") or []
        if not events:
            return 0
        offset = float(payload.get("epoch", self.epoch)) - self.epoch
        default_pid = int(payload.get("pid", 0))
        with self._lock:
            existing = {s.span_id for s in self._spans}
        remap: dict[int, int] = {}
        for e in events:
            if e["id"] in existing:
                remap[e["id"]] = self._next_id()
        adopted = []
        for e in events:
            parent = e.get("parent", -1)
            parent = remap.get(parent, parent)
            if parent == -1 and parent_id is not None:
                parent = parent_id
            adopted.append(
                Span(
                    span_id=remap.get(e["id"], e["id"]),
                    parent_id=parent,
                    name=e["name"],
                    start=float(e["ts"]) + offset,
                    duration=float(e["dur"]),
                    thread=int(e.get("tid", 0)),
                    depth=int(e.get("depth", 0)) + (parent_id is not None),
                    attrs=e.get("attrs") or {},
                    pid=int(e.get("pid", default_pid)),
                    incomplete=bool(e.get("incomplete", False)),
                )
            )
        with self._lock:
            self._spans.extend(adopted)
        return len(adopted)

    # -- export -----------------------------------------------------------

    def to_chrome(self, *, include_incomplete: bool = True) -> dict[str, Any]:
        """The ``chrome://tracing`` JSON object (load in Perfetto too).

        Open spans are emitted as incomplete events (never an error): a
        trace taken after a worker crash still shows where the crash
        happened.
        """
        spans = self.spans
        if include_incomplete:
            spans = spans + self.open_spans()
        return {
            "traceEvents": [s.to_chrome_event() for s in spans],
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro-gsknn", "format_version": 1},
        }

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1, sort_keys=True))
        return path

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one flat JSON event per line (grep/jq-friendly)."""
        path = Path(path)
        with path.open("w") as fh:
            for s in self.spans:
                fh.write(json.dumps(s.to_event(), sort_keys=True) + "\n")
            for s in self.open_spans():
                fh.write(json.dumps(s.to_event(), sort_keys=True) + "\n")
        return path

    def iter_events(self) -> Iterator[dict[str, Any]]:
        for s in self.spans:
            yield s.to_event()


#: Process-global tracer the instrumented kernels report to. Disabled by
#: default — the kernels pay one attribute check per span site.
_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (tests use this to isolate); returns the old."""
    global _GLOBAL_TRACER
    old, _GLOBAL_TRACER = _GLOBAL_TRACER, tracer
    return old


def enable_tracing(*, sample_every: int = 1) -> Tracer:
    """Enable the global tracer (fresh buffer) and return it."""
    tracer = get_tracer()
    tracer.clear()
    tracer.sample_every = int(sample_every)
    tracer.enable()
    return tracer


def disable_tracing() -> Tracer:
    tracer = get_tracer()
    tracer.disable()
    return tracer


def span(name: str, **attrs: Any):
    """Open a span on the global tracer — the kernels' one-liner hook."""
    return _GLOBAL_TRACER.span(name, **attrs)
