"""Memory-checker harness: measure and assert peak workspace bytes.

The out-of-core tier's contract is falsifiable — "a budgeted run's
steady-state workspace stays under the budget" — and this module is the
instrument that falsifies it. :func:`memory_checker` wraps a region of
code and reports two independent measurements of its peak memory:

* ``workspace_peak_bytes`` — the byte-exact high-water mark of every
  arena/plan buffer charged against the :class:`~repro.MemoryBudget`
  (or, without a budget, of the arenas passed explicitly). This is the
  number the budget *enforces*.
* ``traced_peak_bytes`` — tracemalloc's process-wide peak allocation
  delta over the region. This is the number that catches what the
  budget *misses*: an accidental dense temporary (``X[idx]`` instead of
  ``np.take(..., out=)``, a forgotten ``np.isfinite(X)`` over the whole
  table) shows up here even though no arena ever saw it.

Tests assert with :meth:`MemoryReport.assert_within`, which checks the
workspace peak against the budget exactly and the traced peak against
``budget + slack`` (tracemalloc sees legitimate O(m·k) result arrays and
interpreter noise that are out of the budget's scope — see the module
docstring of :mod:`repro.core.membudget`).

Enabling tracemalloc slows allocation-heavy code noticeably; the
harness is for tests and benchmarks, not production serving.
"""

from __future__ import annotations

import contextlib
import tracemalloc
from dataclasses import dataclass, field

from ..errors import MemoryBudgetError

__all__ = ["MemoryReport", "memory_checker"]


@dataclass
class MemoryReport:
    """What one :func:`memory_checker` region measured.

    Populated when the ``with`` block exits; reading the fields inside
    the block gives the live running values instead.
    """

    budget: object | None = None
    arenas: list = field(default_factory=list)
    traced_peak_bytes: int = 0
    _trace_base: int = 0
    _was_tracing: bool = False

    @property
    def workspace_peak_bytes(self) -> int:
        """Peak bytes across the budget and any explicitly watched arenas."""
        peaks = [a.peak_nbytes for a in self.arenas]
        if self.budget is not None:
            peaks.append(self.budget.peak_bytes)
        return max(peaks, default=0)

    def watch(self, arena) -> None:
        """Also track ``arena`` (a WorkspaceArena/ArenaPool) in the report."""
        self.arenas.append(arena)

    def assert_within(
        self, limit_bytes: int | None = None, *, traced_slack_bytes: int = 32 << 20
    ) -> None:
        """Assert both peaks respect the limit; raise MemoryBudgetError.

        ``limit_bytes`` defaults to the watched budget's limit. The
        workspace peak must be <= the limit exactly; the traced peak
        gets ``traced_slack_bytes`` of headroom for out-of-scope
        allocations (result arrays, interpreter internals).
        """
        if limit_bytes is None:
            if self.budget is None:
                raise ValueError(
                    "assert_within needs limit_bytes when no budget is watched"
                )
            limit_bytes = self.budget.limit_bytes
        workspace = self.workspace_peak_bytes
        if workspace > limit_bytes:
            raise MemoryBudgetError(
                f"peak workspace {workspace} bytes exceeds the "
                f"{limit_bytes}-byte limit",
                limit=limit_bytes,
                used=workspace,
                site="memcheck.workspace",
            )
        allowed = limit_bytes + int(traced_slack_bytes)
        if self.traced_peak_bytes > allowed:
            raise MemoryBudgetError(
                f"tracemalloc peak {self.traced_peak_bytes} bytes exceeds "
                f"limit {limit_bytes} + slack {int(traced_slack_bytes)} — "
                "something allocated outside the budgeted workspace",
                limit=allowed,
                used=self.traced_peak_bytes,
                site="memcheck.traced",
            )


@contextlib.contextmanager
def memory_checker(budget=None):
    """Measure peak workspace + traced allocation over a ``with`` region.

    ``budget`` is anything :meth:`MemoryBudget.coerce` accepts (a ready
    budget, a byte count, a ``"64MiB"`` spec, or ``None``). The same
    coerced budget should be the one threaded into the solves under
    test — pass ``report.budget`` — so the workspace peak the report
    sees is the one the kernels charged::

        with memory_checker("64MiB") as report:
            result = gsknn(Xm, q, r, k, memory_budget=report.budget)
        report.assert_within()

    tracemalloc is started for the region (and stopped after, unless it
    was already running); the traced peak is the *delta* above the
    allocation level at entry, so surrounding test fixtures don't leak
    into the measurement.
    """
    from ..core.membudget import MemoryBudget

    report = MemoryReport(budget=MemoryBudget.coerce(budget))
    report._was_tracing = tracemalloc.is_tracing()
    if not report._was_tracing:
        tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    report._trace_base = base
    try:
        yield report
    finally:
        _, peak = tracemalloc.get_traced_memory()
        report.traced_peak_bytes = max(0, peak - base)
        if not report._was_tracing:
            tracemalloc.stop()
