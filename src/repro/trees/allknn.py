"""The all-nearest-neighbors driver (the Table 1 experiment's skeleton).

Iterates a partitioner (randomized KD-trees or LSH) over the dataset;
for every group it runs one *exact* kNN kernel with the group as both
queries and references, merges the group's lists into the global
neighbor table, and repeats with fresh randomization until the lists
stop improving or the iteration budget is exhausted.

The kernel is switchable between ``"gsknn"`` (the fused kernel) and
``"gemm"`` (Algorithm 2.1) — exactly the substitution Table 1 measures —
and kernel time is accounted separately so the paper's ">90% of time in
the kernel" context is reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.gsknn import gsknn
from ..core.neighbors import KnnResult, merge_neighbor_lists_fast, recall
from ..core.norms import squared_norms
from ..core.ref_kernel import ref_knn
from ..errors import ValidationError
from ..validation import as_coordinate_table, check_finite, check_k
from .lsh import LSHSolver
from .rkdtree import RandomizedKDForest

__all__ = ["all_nearest_neighbors", "exact_all_knn", "AllKnnReport"]


@dataclass
class AllKnnReport:
    """Outcome of an approximate all-NN run."""

    result: KnnResult
    iterations: int
    kernel_seconds: float
    total_seconds: float
    converged: bool
    group_count: int = 0
    mean_group_size: float = 0.0
    recall_curve: list[float] = field(default_factory=list)
    #: which solver actually ran — matters for ``method="auto"``, where
    #: the planner's choice (or its exact fallback) is invisible in the
    #: arguments
    method_used: str = ""
    #: the planner decision behind ``method="auto"`` runs, else None
    decision: object | None = None

    @property
    def kernel_fraction(self) -> float:
        """Share of wall-clock spent inside the kNN kernel."""
        if self.total_seconds <= 0:
            return 0.0
        return self.kernel_seconds / self.total_seconds


def _run_kernel(
    kernel: str,
    X: np.ndarray,
    group: np.ndarray,
    k: int,
    X2: np.ndarray,
    variant: int | str,
    initial: KnnResult | None = None,
    plans: "PlanCache | None" = None,
) -> KnnResult:
    """Solve one group; with ``initial`` (the group's current lists) the
    fused kernel both warm-starts its filter and performs the update
    merge itself — the paper's 'update the neighbor lists' semantics.
    With ``plans``, the group's kernel runs through a cached
    :class:`~repro.core.plan.GsknnPlan` (arena-backed buffers shared
    across every group of the run, reference panels reused whenever the
    same group recurs across iterations)."""
    k_eff = min(k, group.size)
    folded = False
    if kernel == "gsknn":
        warm = initial if (initial is not None and k_eff == k) else None
        if plans is not None:
            plan = plans.get(X, group, variant=variant, X2=X2)
            res = plan.execute(group, k_eff, initial=warm)
        else:
            res = gsknn(
                X, group, group, k_eff, X2=X2, variant=variant, initial=warm
            )
        folded = warm is not None
    elif kernel == "gemm":
        res = ref_knn(X, group, group, k_eff, X2=X2)
    else:
        raise ValidationError(
            f"kernel must be 'gsknn' or 'gemm', got {kernel!r}"
        )
    if k_eff < k:
        pad = k - k_eff
        res = KnnResult(
            np.pad(res.distances, ((0, 0), (0, pad)), constant_values=np.inf),
            np.pad(res.indices, ((0, 0), (0, pad)), constant_values=-1),
        )
    if initial is not None and not folded:
        res = merge_neighbor_lists_fast(res, initial)
    return res


def _solve_groups(
    kernel: str,
    X: np.ndarray,
    groups: list[np.ndarray],
    k: int,
    X2: np.ndarray,
    variant: int | str,
    n_workers: int,
    current: KnnResult,
    plans: "PlanCache | None" = None,
) -> list[KnnResult]:
    """Solve one iteration's group kernels, serially or task-parallel.

    Each group gets its rows' *current* lists as the kernel's warm
    ``initial`` — groups within a grouping are disjoint, so the reads
    are race-free even under the thread pool.
    """

    def warm(g: np.ndarray) -> KnnResult:
        return KnnResult(current.distances[g], current.indices[g])

    if n_workers == 1 or len(groups) <= 1:
        return [
            _run_kernel(kernel, X, g, k, X2, variant, warm(g), plans)
            for g in groups
        ]

    # §2.5 task parallelism: LPT-schedule groups by modeled runtime
    from ..model.perf_model import PerformanceModel
    from ..parallel.scheduler import ScheduledTask, execute_schedule, lpt_schedule

    model = PerformanceModel()
    tasks = [
        ScheduledTask(
            i,
            model.estimate_kernel_runtime(
                g.size, g.size, X.shape[1], min(k, g.size)
            ),
            payload=g,
        )
        for i, g in enumerate(groups)
    ]
    schedule = lpt_schedule(tasks, n_workers)
    results = execute_schedule(
        schedule,
        lambda t: _run_kernel(
            kernel, X, t.payload, k, X2, variant, warm(t.payload), plans
        ),
    )
    return [results[i] for i in range(len(groups))]


def exact_all_knn(
    X: np.ndarray,
    k: int,
    *,
    kernel: str = "gsknn",
    batch: int = 2048,
) -> KnnResult:
    """Exact all-NN by brute force: every point queried against all points.

    O(N^2 d) — the ground truth for recall evaluation at small N. Queries
    run in batches so memory stays bounded.
    """
    X = as_coordinate_table(X)
    check_finite(X)
    n = X.shape[0]
    k = check_k(k, n)
    all_idx = np.arange(n, dtype=np.intp)
    X2 = squared_norms(X)
    dist = np.empty((n, k), dtype=np.float64)
    idx = np.empty((n, k), dtype=np.intp)
    for start in range(0, n, batch):
        q = all_idx[start : start + batch]
        if kernel == "gsknn":
            res = gsknn(X, q, all_idx, k, X2=X2)
        elif kernel == "gemm":
            res = ref_knn(X, q, all_idx, k, X2=X2)
        else:
            raise ValidationError(
                f"kernel must be 'gsknn' or 'gemm', got {kernel!r}"
            )
        dist[start : start + q.size] = res.distances
        idx[start : start + q.size] = res.indices
    return KnnResult(dist, idx)


def _graph_all_knn(
    X: np.ndarray,
    k: int,
    *,
    seed: int | None,
    truth: KnnResult | None,
    graph_kwargs: dict,
    decision: object | None = None,
) -> AllKnnReport:
    """All-NN by NN-descent: the built graph's kNN lists are the answer.

    The build's tree initialization runs its leaf solves through the
    fused kernel, so ``kernel_seconds`` reports that stage; refinement
    rounds are blocked candidate GEMMs accounted in ``total_seconds``.
    """
    from ..approx.nndescent import build_graph_index

    kwargs = dict(graph_kwargs)
    kwargs["k_build"] = max(int(kwargs.get("k_build", max(k, 16))), k)
    kwargs.setdefault("seed", 0 if seed is None else int(seed))
    index = build_graph_index(X, truth=truth, **kwargs)
    rep = index.build_report
    return AllKnnReport(
        result=index.as_result(k),
        iterations=rep.rounds,
        kernel_seconds=rep.init_seconds,
        total_seconds=rep.total_seconds,
        converged=rep.converged,
        recall_curve=list(rep.recall_curve),
        method_used="graph",
        decision=decision,
    )


def all_nearest_neighbors(
    X: np.ndarray,
    k: int,
    *,
    method: str = "rkdtree",
    kernel: str = "gsknn",
    leaf_size: int = 512,
    iterations: int = 8,
    tol: float = 1e-4,
    seed: int | None = 0,
    variant: int | str = "auto",
    truth: KnnResult | None = None,
    lsh: LSHSolver | None = None,
    n_workers: int = 1,
    plan_reuse: "bool | PlanCache" = True,
    recall_target: float | None = None,
    planner: "object | None" = None,
    graph_kwargs: dict | None = None,
) -> AllKnnReport:
    """Approximate all-nearest-neighbors via iterated random groupings.

    Parameters
    ----------
    method:
        ``"rkdtree"`` (randomized KD-trees, the Table 1 solver),
        ``"rptree"`` (random projection trees, the paper's ref [6]),
        ``"lsh"`` (random-projection hashing), ``"graph"`` (NN-descent
        graph construction — the index's kNN lists *are* the all-NN
        answer) or ``"auto"`` (let the recall-aware
        :class:`~repro.approx.planner.QueryPlanner` pick; see
        ``recall_target``).
    kernel:
        ``"gsknn"`` or ``"gemm"`` — which kNN kernel solves each group.
    leaf_size:
        Target group size ``m`` (points per leaf / bucket cap).
    iterations:
        Maximum random groupings (trees / hash tables).
    tol:
        Convergence: stop when the summed kth-neighbor distance improves
        by less than ``tol`` (relatively) over one iteration.
    truth:
        Optional exact result; when given, per-iteration recall is
        recorded in ``report.recall_curve``.
    n_workers:
        Task-parallel execution of each iteration's group kernels
        (§2.5): groups are LPT-scheduled onto ``n_workers`` threads by
        model-estimated runtime. Results are identical to serial
        (groups within one iteration are disjoint). 1 = serial.
    plan_reuse:
        Run each group kernel through a cached
        :class:`~repro.core.plan.GsknnPlan` (default). All groups share
        one workspace arena pool, so the per-group distance/merge
        temporaries are allocated once per run instead of once per
        group, and warm-started groups use the masked selection path.
        Results are identical either way; ``False`` restores the plain
        one-shot kernel calls. Pass an existing
        :class:`~repro.core.plan.PlanCache` to carry plans *across*
        solves: repeated solves over the same table with the same seed
        regrow identical trees, so every leaf group hits its cached
        reference panels and the already-grown workspace arenas.
    recall_target:
        Only read by ``method="auto"``: the recall the planner must
        (predictedly) meet. ``None`` or ``>= 0.999`` means exact.
    planner:
        Only read by ``method="auto"``: a pre-built
        :class:`~repro.approx.planner.QueryPlanner` (tests inject one
        with a handcrafted calibration). Default constructs one from the
        persisted per-host calibration; a missing calibration silently
        falls back to exact.
    graph_kwargs:
        Only read by ``method="graph"``/``"auto"``: extra keyword
        arguments for :func:`~repro.approx.nndescent.build_graph_index`
        (``k_build`` is clamped up to ``k`` so the lists stay wide
        enough for the answer).
    """
    X = as_coordinate_table(X)
    check_finite(X)
    n = X.shape[0]
    k = check_k(k, n)

    if method == "auto":
        from ..approx.planner import QueryPlanner

        qp = planner if planner is not None else QueryPlanner()
        decision = qp.plan(
            n, X.shape[1], k, recall_target=recall_target, workload="allknn"
        )
        if decision.method == "graph":
            gk = dict(graph_kwargs or {})
            if "k_build" not in gk and "k_build" in decision.params:
                gk["k_build"] = int(decision.params["k_build"])
            return _graph_all_knn(
                X, k, seed=seed, truth=truth, graph_kwargs=gk,
                decision=decision,
            )
        if decision.method in ("rkdtree", "rptree", "lsh"):
            report = all_nearest_neighbors(
                X,
                k,
                method=decision.method,
                kernel=kernel,
                leaf_size=int(decision.params.get("leaf_size", leaf_size)),
                iterations=int(decision.params.get("iterations", iterations)),
                tol=tol,
                seed=seed,
                variant=variant,
                truth=truth,
                lsh=lsh,
                n_workers=n_workers,
                plan_reuse=plan_reuse,
            )
            report.decision = decision
            return report
        # "exact" — the planner's choice and every fallback rung alike
        t0 = time.perf_counter()
        result = exact_all_knn(X, k, kernel=kernel)
        total = time.perf_counter() - t0
        return AllKnnReport(
            result=result,
            iterations=1,
            kernel_seconds=total,
            total_seconds=total,
            converged=True,
            recall_curve=[recall(result, truth)] if truth is not None else [],
            method_used="exact",
            decision=decision,
        )

    if method == "graph":
        return _graph_all_knn(
            X, k, seed=seed, truth=truth, graph_kwargs=dict(graph_kwargs or {})
        )

    if iterations < 1:
        raise ValidationError(f"iterations must be >= 1, got {iterations}")
    if leaf_size <= k:
        raise ValidationError(
            f"leaf_size ({leaf_size}) must exceed k ({k}) or groups "
            "cannot fill a neighbor list"
        )

    if method == "rkdtree":
        forest = RandomizedKDForest(
            leaf_size=leaf_size, n_trees=iterations, seed=seed
        )
        groupings = ([leaf for leaf in tree.leaves] for tree in forest.trees(X))
    elif method == "rptree":
        from .rptree import RandomProjectionForest

        rp_forest = RandomProjectionForest(
            leaf_size=leaf_size, n_trees=iterations, seed=seed
        )
        groupings = (
            [leaf for leaf in tree.leaves] for tree in rp_forest.trees(X)
        )
    elif method == "lsh":
        solver = lsh if lsh is not None else LSHSolver(
            n_tables=iterations, max_bucket=leaf_size, seed=seed
        )
        groupings = solver.buckets(X)
    else:
        raise ValidationError(
            "method must be 'rkdtree', 'rptree', 'lsh', 'graph' or "
            f"'auto', got {method!r}"
        )

    X2 = squared_norms(X)
    plans = None
    if kernel == "gsknn":
        from ..core.plan import PlanCache

        # NOTE: an empty PlanCache is falsy (len == 0), so the instance
        # check must come before the truthiness one
        if isinstance(plan_reuse, PlanCache):
            plans = plan_reuse
        elif plan_reuse:
            plans = PlanCache(max_plans=64)
    current = KnnResult(
        np.full((n, k), np.inf), np.full((n, k), -1, dtype=np.intp)
    )
    kernel_seconds = 0.0
    group_count = 0
    group_size_total = 0
    recall_curve: list[float] = []
    converged = False
    start_total = time.perf_counter()
    last_score = np.inf
    done = 0

    if n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")

    for grouping in groupings:
        done += 1
        groups = [
            np.asarray(group, dtype=np.intp)
            for group in grouping
            if np.asarray(group).size >= 2
        ]
        group_count += len(groups)
        group_size_total += int(sum(g.size for g in groups))
        t0 = time.perf_counter()
        locals_by_group = _solve_groups(
            kernel, X, groups, k, X2, variant, n_workers, current, plans
        )
        kernel_seconds += time.perf_counter() - t0
        for group, local in zip(groups, locals_by_group):
            # kernels received the rows' current lists as warm initial
            # state and returned the already-merged update, so the
            # global table takes a straight assignment
            current.distances[group] = local.distances
            current.indices[group] = local.indices
        if truth is not None:
            recall_curve.append(recall(current, truth))
        filled = current.distances[np.isfinite(current.distances)]
        score = float(filled.sum())
        if np.isfinite(last_score) and last_score > 0:
            if (last_score - score) / last_score < tol and bool(
                (current.indices >= 0).all()
            ):
                converged = True
                break
        last_score = score
        if done >= iterations:
            break

    total_seconds = time.perf_counter() - start_total
    return AllKnnReport(
        result=current,
        iterations=done,
        kernel_seconds=kernel_seconds,
        total_seconds=total_seconds,
        converged=converged,
        group_count=group_count,
        mean_group_size=(group_size_total / group_count) if group_count else 0.0,
        recall_curve=recall_curve,
        method_used=method,
    )
