"""Synthetic dataset generators used by the paper's experiments.

Two generators matter:

* :func:`uniform_hypercube` — the ``U[0,1]^d`` sampler used for every
  kernel-level experiment (Table 5, Figures 4-6);
* :func:`embedded_gaussian` — the Table 1 dataset: a 10-dimensional
  Gaussian mixture embedded (via a random rotation) into a
  ``d``-dimensional ambient space, which gives the randomized-KD-tree
  outer solver realistic low intrinsic dimensionality.
"""

from .synthetic import (
    Dataset,
    embedded_gaussian,
    gaussian_mixture,
    uniform_hypercube,
)
from .loaders import load_dataset, save_dataset

__all__ = [
    "Dataset",
    "uniform_hypercube",
    "gaussian_mixture",
    "embedded_gaussian",
    "save_dataset",
    "load_dataset",
]
