"""Tests for MemoryBudget: spec parsing, coercion, reserve/release accounting."""

from __future__ import annotations

import threading

import pytest

from repro.core.membudget import MemoryBudget, parse_bytes
from repro.errors import MemoryBudgetError, ReproError, ValidationError


class TestParseBytes:
    @pytest.mark.parametrize(
        ("spec", "expected"),
        [
            (1024, 1024),
            (1024.9, 1024),  # ints truncate like int()
            ("4096", 4096),
            ("64MiB", 64 << 20),
            ("64MB", 64 << 20),  # binary on purpose: KB == KiB
            ("64m", 64 << 20),
            ("  2 GiB ", 2 << 30),
            ("1.5k", 1536),
            ("1tb", 1 << 40),
            ("512b", 512),
        ],
    )
    def test_accepted(self, spec, expected):
        assert parse_bytes(spec) == expected

    @pytest.mark.parametrize(
        "spec", ["", "MiB", "64 qux", "-1", "0", -5, 0, True, "1..5k"]
    )
    def test_rejected(self, spec):
        with pytest.raises(ValidationError):
            parse_bytes(spec)


class TestCoerce:
    def test_none_passes_through(self):
        assert MemoryBudget.coerce(None) is None

    def test_ready_budget_is_identity(self):
        b = MemoryBudget("1MiB")
        assert MemoryBudget.coerce(b) is b

    def test_spec_and_int(self):
        assert MemoryBudget.coerce("2MiB").limit_bytes == 2 << 20
        assert MemoryBudget.coerce(4096).limit_bytes == 4096


class TestAccounting:
    def test_reserve_release_peak(self):
        b = MemoryBudget(1000)
        b.reserve(400)
        b.reserve(500)
        assert b.used_bytes == 900
        assert b.remaining_bytes == 100
        b.release(500)
        assert b.used_bytes == 400
        assert b.peak_bytes == 900  # peak survives the release

    def test_denial_raises_with_context(self):
        b = MemoryBudget(100)
        b.reserve(60)
        with pytest.raises(MemoryBudgetError) as info:
            b.reserve(50, site="arena:tile")
        exc = info.value
        assert exc.limit == 100
        assert exc.requested == 50
        assert exc.used == 60
        assert exc.site == "arena:tile"
        assert "arena:tile" in str(exc)
        assert b.denials == 1
        # the failed reservation charged nothing
        assert b.used_bytes == 60

    def test_would_fit(self):
        b = MemoryBudget(100)
        assert b.would_fit(100)
        b.reserve(1)
        assert not b.would_fit(100)

    def test_release_clamps_at_zero(self):
        b = MemoryBudget(100)
        b.reserve(10)
        b.release(10_000)
        assert b.used_bytes == 0

    def test_negative_amounts_rejected(self):
        b = MemoryBudget(100)
        with pytest.raises(ValidationError):
            b.reserve(-1)
        with pytest.raises(ValidationError):
            b.release(-1)

    def test_thread_safety_of_reserve(self):
        # 8 threads x 100 reserve(1) must never exceed the 800 cap and
        # must account exactly: a racy += would lose updates.
        b = MemoryBudget(800)

        def work():
            for _ in range(100):
                b.reserve(1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert b.used_bytes == 800
        assert b.peak_bytes == 800


class TestErrorHierarchy:
    def test_is_repro_and_memory_error(self):
        # Catchable as the repo's base error AND as the stdlib
        # MemoryError (callers with generic OOM handling see it).
        exc = MemoryBudgetError("x", limit=1, requested=2, used=0)
        assert isinstance(exc, ReproError)
        assert isinstance(exc, MemoryError)
