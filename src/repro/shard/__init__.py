"""Multi-process sharding with scatter/gather top-k routing.

The extreme-scale recipe (PANDA, PAPERS.md) applied to the fused GSKNN
kernel: partition the reference table across long-lived shard worker
processes (:class:`~repro.shard.map.ShardMap` — panel-aligned so shard
boundaries never split a GEMM tile), scatter each query batch to the
owning shards, solve the fused kernel locally per shard against warm
per-shard plans, and gather/merge the partial top-k lists
(:func:`repro.select.mergeselect.merge_partial_topk`) into a result
**bit-identical** to a single-process solve on the same data.

See docs/DISTRIBUTED.md for the shard map, the transport contract, and
the per-shard failure ladder.
"""

from .map import ShardMap
from .router import ShardedAllKnn
from .transport import (
    LocalTransport,
    ProcessTransport,
    ShardTransport,
    ShardWorld,
    TRANSPORTS,
    resolve_transport,
)

__all__ = [
    "ShardMap",
    "ShardedAllKnn",
    "ShardTransport",
    "ShardWorld",
    "LocalTransport",
    "ProcessTransport",
    "TRANSPORTS",
    "resolve_transport",
]
