"""Simulated message passing with alpha-beta cost accounting.

A :class:`SimComm` is a deterministic, single-process stand-in for an
MPI communicator: ranks post typed messages into each other's inboxes
(payloads are real numpy arrays — the solver's correctness rides on
them), and every transfer is tallied per rank. An
:class:`AlphaBetaModel` then prices the tallies with the classic
``T = n_messages * alpha + n_bytes * beta`` model, so the distributed
solver can report a projected communication time alongside its
measured kernel time.

Default constants approximate the FDR InfiniBand fabric of the paper's
testbed era: ``alpha = 2 microseconds`` per message, ``beta`` for
~5 GB/s effective per-rank bandwidth.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..obs.metrics import get_registry as _get_registry

__all__ = ["CommStats", "AlphaBetaModel", "SimComm"]


@dataclass
class CommStats:
    """Per-rank transfer tallies (sends only; receives mirror them)."""

    messages: int = 0
    bytes_sent: int = 0


@dataclass(frozen=True)
class AlphaBetaModel:
    """``T = messages * alpha + bytes * beta`` communication pricing."""

    alpha: float = 2e-6
    beta: float = 2e-10  # s/byte ~ 5 GB/s per rank

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValidationError("alpha and beta must be non-negative")

    def seconds(self, stats: CommStats) -> float:
        return stats.messages * self.alpha + stats.bytes_sent * self.beta


def _payload_bytes(payload) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(_payload_bytes(item) for item in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    raise ValidationError(
        f"unsupported payload type {type(payload).__name__}"
    )


class SimComm:
    """A simulated communicator over ``n_ranks`` ranks.

    Messages are delivered in FIFO order per (source, destination, tag)
    channel; :meth:`recv` blocks conceptually but, this being a
    single-process simulation, simply raises if nothing is pending —
    the solver's send/recv schedule must be deadlock-free by
    construction, which the tests assert.
    """

    def __init__(self, n_ranks: int, *, deadline=None) -> None:
        if n_ranks < 1:
            raise ValidationError(f"need n_ranks >= 1, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self.stats = [CommStats() for _ in range(self.n_ranks)]
        self._channels: dict[tuple[int, int, str], deque] = defaultdict(deque)
        #: optional :class:`repro.resilience.Deadline` — checked on every
        #: send/recv so a budgeted solve cannot overrun inside an
        #: exchange phase (the real solver's alltoallv is where stragglers
        #: hide); expiry raises KernelTimeoutError mid-collective
        self.deadline = deadline

    def _check_rank(self, rank: int, name: str) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValidationError(
                f"{name}={rank} out of range for {self.n_ranks} ranks"
            )

    def send(self, src: int, dst: int, payload, tag: str = "") -> None:
        """Post ``payload`` from ``src`` to ``dst`` (self-sends are free)."""
        if self.deadline is not None:
            self.deadline.check("comm.send", src=src, dst=dst, tag=tag)
        self._check_rank(src, "src")
        self._check_rank(dst, "dst")
        self._channels[(src, dst, tag)].append(payload)
        if src != dst:
            nbytes = _payload_bytes(payload)
            self.stats[src].messages += 1
            self.stats[src].bytes_sent += nbytes
            registry = _get_registry()
            if registry.enabled:
                # labeled per source rank: the live per-rank lane the
                # sharding milestone will watch for stragglers
                labels = {"rank": src}
                registry.inc("comm.messages", labels=labels)
                registry.inc("comm.bytes_sent", nbytes, labels=labels)

    def recv(self, dst: int, src: int, tag: str = ""):
        """Pop the oldest pending message on the (src, dst, tag) channel."""
        if self.deadline is not None:
            self.deadline.check("comm.recv", src=src, dst=dst, tag=tag)
        self._check_rank(src, "src")
        self._check_rank(dst, "dst")
        channel = self._channels[(src, dst, tag)]
        if not channel:
            raise ValidationError(
                f"rank {dst} has no pending message from {src} (tag {tag!r})"
            )
        return channel.popleft()

    # -- collectives (expressed via point-to-point so costs accrue) --------

    def gather(self, root: int, rank_payloads: list, tag: str = "gather") -> list:
        """All ranks send to root; returns the payload list at root."""
        if len(rank_payloads) != self.n_ranks:
            raise ValidationError(
                f"gather needs one payload per rank, got {len(rank_payloads)}"
            )
        for rank, payload in enumerate(rank_payloads):
            self.send(rank, root, payload, tag)
        return [self.recv(root, rank, tag) for rank in range(self.n_ranks)]

    def broadcast(self, root: int, payload, tag: str = "bcast") -> list:
        """Root sends to all ranks; returns each rank's received copy."""
        for rank in range(self.n_ranks):
            self.send(root, rank, payload, tag)
        return [self.recv(rank, root, tag) for rank in range(self.n_ranks)]

    def alltoallv(self, chunks: list[list], tag: str = "a2a") -> list[list]:
        """chunks[i][j] goes from rank i to rank j; returns per-rank inboxes."""
        if len(chunks) != self.n_ranks or any(
            len(row) != self.n_ranks for row in chunks
        ):
            raise ValidationError("alltoallv needs an n_ranks x n_ranks grid")
        for src, row in enumerate(chunks):
            for dst, payload in enumerate(row):
                self.send(src, dst, payload, tag)
        return [
            [self.recv(dst, src, tag) for src in range(self.n_ranks)]
            for dst in range(self.n_ranks)
        ]

    # -- accounting ----------------------------------------------------------

    def max_rank_seconds(self, model: AlphaBetaModel) -> float:
        """Communication time of the busiest rank under ``model``."""
        return max(model.seconds(s) for s in self.stats)

    def total_bytes(self) -> int:
        return sum(s.bytes_sent for s in self.stats)
