"""Seeded determinism across the randomized index structures.

Contract: the same seed reproduces bit-identical structures — LSH
bucket contents, forest leaf partitions, and the approximate solves
built on top of them. Different seeds must actually diversify.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trees.lsh import LSHSolver
from repro.trees.rkdtree import RandomizedKDForest
from repro.trees.allknn import all_nearest_neighbors


@pytest.fixture(scope="module")
def X():
    return np.random.default_rng(7).standard_normal((400, 6))


def _materialize_buckets(solver, X):
    return [
        [np.asarray(g) for g in table] for table in solver.buckets(X)
    ]


class TestLshDeterminism:
    def test_same_seed_bit_identical_buckets(self, X):
        a = _materialize_buckets(LSHSolver(seed=3), X)
        b = _materialize_buckets(LSHSolver(seed=3), X)
        assert len(a) == len(b)
        for ta, tb in zip(a, b):
            assert len(ta) == len(tb)
            for ga, gb in zip(ta, tb):
                np.testing.assert_array_equal(ga, gb)

    def test_different_seed_differs(self, X):
        a = _materialize_buckets(LSHSolver(seed=3), X)
        b = _materialize_buckets(LSHSolver(seed=4), X)
        flat_a = [tuple(g.tolist()) for t in a for g in t]
        flat_b = [tuple(g.tolist()) for t in b for g in t]
        assert flat_a != flat_b

    def test_width_derives_from_solver_seed(self, X):
        # the auto bucket width must be a pure function of (X, seed)
        w1 = LSHSolver(seed=11)._width(X)
        w2 = LSHSolver(seed=11)._width(X)
        w3 = LSHSolver(seed=12)._width(X)
        assert w1 == w2
        assert w1 != w3

    def test_width_ignores_global_rng_state(self, X):
        w1 = LSHSolver(seed=11)._width(X)
        np.random.seed(0)
        np.random.random(1000)
        w2 = LSHSolver(seed=11)._width(X)
        assert w1 == w2


class TestForestDeterminism:
    def test_same_seed_bit_identical_leaves(self, X):
        fa = RandomizedKDForest(leaf_size=32, n_trees=4, seed=5)
        fb = RandomizedKDForest(leaf_size=32, n_trees=4, seed=5)
        trees_a = [tree.leaves for tree in fa.trees(X)]
        trees_b = [tree.leaves for tree in fb.trees(X)]
        assert len(trees_a) == len(trees_b) == 4
        for la, lb in zip(trees_a, trees_b):
            assert len(la) == len(lb)
            for leaf_a, leaf_b in zip(la, lb):
                np.testing.assert_array_equal(leaf_a, leaf_b)

    def test_different_seed_differs(self, X):
        fa = RandomizedKDForest(leaf_size=32, n_trees=1, seed=5)
        fb = RandomizedKDForest(leaf_size=32, n_trees=1, seed=6)
        la = [leaf.tolist() for t in fa.trees(X) for leaf in t.leaves]
        lb = [leaf.tolist() for t in fb.trees(X) for leaf in t.leaves]
        assert la != lb

    def test_trees_within_forest_differ(self, X):
        forest = RandomizedKDForest(leaf_size=32, n_trees=2, seed=5)
        t1, t2 = (tree.leaves for tree in forest.trees(X))
        assert [l.tolist() for l in t1] != [l.tolist() for l in t2]


class TestSolveDeterminism:
    @pytest.mark.parametrize("method", ["rkdtree", "lsh", "graph"])
    def test_same_seed_same_answers(self, X, method):
        a = all_nearest_neighbors(X, 8, method=method, seed=13)
        b = all_nearest_neighbors(X, 8, method=method, seed=13)
        np.testing.assert_array_equal(a.result.indices, b.result.indices)
        np.testing.assert_array_equal(
            a.result.distances, b.result.distances
        )
