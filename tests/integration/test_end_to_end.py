"""Cross-module integration tests: the full stack wired together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import gsknn, ref_knn
from repro.core.neighbors import recall
from repro.data import embedded_gaussian
from repro.machine import IVY_BRIDGE
from repro.model import PerformanceModel
from repro.parallel import ScheduledTask, lpt_schedule
from repro.parallel.scheduler import execute_schedule
from repro.trees import RandomizedKDForest, all_nearest_neighbors, exact_all_knn


class TestKernelsAgreeAtScale:
    def test_gsknn_equals_gemm_kernel_medium_problem(self):
        ds = embedded_gaussian(3000, 24, seed=0)
        q = np.arange(0, 3000, 3)
        r = np.arange(3000)
        a = gsknn(ds.points, q, r, 12)
        b = ref_knn(ds.points, q, r, 12)
        np.testing.assert_allclose(a.distances, b.distances, atol=1e-9)

    def test_variant_choice_does_not_change_answers(self):
        ds = embedded_gaussian(800, 16, seed=1)
        q, r = np.arange(200), np.arange(800)
        answers = [
            gsknn(ds.points, q, r, 50, variant=v).distances for v in (1, 5, 6)
        ]
        for other in answers[1:]:
            np.testing.assert_allclose(answers[0], other, atol=1e-9)


class TestScheduledLeafKernels:
    def test_model_driven_schedule_runs_tree_leaves(self):
        """The paper's task-parallel path: estimate each leaf kernel's
        runtime with the model, LPT-schedule, execute, and still get the
        same global result as the serial driver."""
        ds = embedded_gaussian(600, 12, intrinsic_dim=6, seed=2)
        forest = RandomizedKDForest(leaf_size=96, n_trees=1, seed=0)
        tree = next(iter(forest.trees(ds.points)))
        model = PerformanceModel(IVY_BRIDGE)
        k = 8

        tasks = [
            ScheduledTask(
                i,
                model.estimate_kernel_runtime(
                    leaf.size, leaf.size, ds.dim, min(k, leaf.size)
                ),
                payload=leaf,
            )
            for i, leaf in enumerate(tree.leaves)
        ]
        schedule = lpt_schedule(tasks, p=4)
        assert schedule.imbalance < 2.0

        results = execute_schedule(
            schedule,
            lambda t: gsknn(
                ds.points, t.payload, t.payload, min(k, t.payload.size)
            ),
        )
        assert len(results) == len(tree.leaves)
        # every leaf's own points found themselves
        for i, leaf in enumerate(tree.leaves):
            np.testing.assert_allclose(
                results[i].distances[:, 0], 0.0, atol=1e-9
            )


class TestSolverRecallVsBudget:
    def test_more_trees_more_recall_both_kernels(self):
        ds = embedded_gaussian(500, 16, intrinsic_dim=5, seed=4)
        truth = exact_all_knn(ds.points, 5)
        for kernel in ("gsknn", "gemm"):
            few = all_nearest_neighbors(
                ds.points, 5, leaf_size=64, iterations=1,
                kernel=kernel, truth=truth, tol=0.0,
            )
            many = all_nearest_neighbors(
                ds.points, 5, leaf_size=64, iterations=6,
                kernel=kernel, truth=truth, tol=0.0,
            )
            assert many.recall_curve[-1] >= few.recall_curve[-1]


class TestModelAgainstRealKernels:
    def test_model_ranks_low_d_speedup_above_high_d(self):
        """The model's central qualitative claim checked against real
        timings: GSKNN's advantage over the GEMM approach (T_gemm /
        T_gsknn) is larger at low d than at high d."""
        import time

        rng = np.random.default_rng(0)
        m = n = 2048
        k = 16

        def measured_ratio(d):
            X = rng.random((n, d))
            q, r = np.arange(m), np.arange(n)
            best = {"g": np.inf, "r": np.inf}
            for _ in range(3):
                t0 = time.perf_counter()
                gsknn(X, q, r, k)
                best["g"] = min(best["g"], time.perf_counter() - t0)
                t0 = time.perf_counter()
                ref_knn(X, q, r, k)
                best["r"] = min(best["r"], time.perf_counter() - t0)
            return best["r"] / best["g"]

        model = PerformanceModel()
        assert model.speedup_over_gemm("var1", m, n, 8, k) > model.speedup_over_gemm(
            "var1", m, n, 512, k
        )
        assert measured_ratio(8) > measured_ratio(512) * 0.7
