"""Unit tests for blocking configuration and block iteration."""

from __future__ import annotations

import pytest

from repro.config import (
    BlockingParams,
    IVY_BRIDGE_BLOCKING,
    TEST_BLOCKING,
    iter_blocks,
)
from repro.errors import ConfigurationError


class TestIterBlocks:
    def test_even_split(self):
        assert list(iter_blocks(10, 5)) == [(0, 5), (5, 5)]

    def test_ragged_tail(self):
        assert list(iter_blocks(10, 4)) == [(0, 4), (4, 4), (8, 2)]

    def test_block_larger_than_total(self):
        assert list(iter_blocks(3, 100)) == [(0, 3)]

    def test_covers_everything(self):
        for total, block in [(1, 1), (17, 3), (100, 7)]:
            covered = sum(size for _, size in iter_blocks(total, block))
            assert covered == total


class TestBlockingParams:
    def test_paper_parameters(self):
        """§3: m_r=8, n_r=4, d_c=256, m_c=104, n_c=4096; Q_c 208 KiB,
        R_c 8 MiB."""
        blk = IVY_BRIDGE_BLOCKING
        assert (blk.m_r, blk.n_r, blk.d_c, blk.m_c, blk.n_c) == (
            8, 4, 256, 104, 4096,
        )
        assert blk.packed_q_bytes() == 208 * 1024
        assert blk.packed_r_bytes() == 8 * 1024 * 1024

    def test_micropanel_bytes(self):
        assert TEST_BLOCKING.micropanel_bytes() == 8 * 3 * 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockingParams(m_r=0, n_r=1, d_c=1, m_c=1, n_c=1)
        with pytest.raises(ConfigurationError):
            BlockingParams(m_r=4, n_r=1, d_c=1, m_c=2, n_c=1)  # m_r > m_c
        with pytest.raises(ConfigurationError):
            BlockingParams(m_r=1, n_r=4, d_c=1, m_c=1, n_c=2)  # n_r > n_c

    def test_with_m_c(self):
        blk = IVY_BRIDGE_BLOCKING.with_m_c(64)
        assert blk.m_c == 64
        assert blk.n_c == IVY_BRIDGE_BLOCKING.n_c

    def test_frozen(self):
        with pytest.raises(AttributeError):
            IVY_BRIDGE_BLOCKING.m_c = 1
