"""Unit tests for the batched vectorized neighbor lists."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arena import WorkspaceArena
from repro.errors import ValidationError
from repro.select import ArenaNeighborLists, BatchedNeighborLists, merge_block
from repro.select.heap import BinaryMaxHeap


class TestMergeBlock:
    def test_keeps_k_smallest_union(self, rng):
        values = rng.random((4, 3))
        ids = rng.integers(0, 100, (4, 3))
        cand = rng.random((4, 6))
        cand_ids = np.arange(100, 106)
        new_values, new_ids = merge_block(values, ids, cand, cand_ids)
        for i in range(4):
            union = np.concatenate([values[i], cand[i]])
            np.testing.assert_allclose(
                np.sort(new_values[i]), np.sort(union)[:3]
            )

    def test_2d_candidate_ids(self, rng):
        values = np.full((2, 2), np.inf)
        ids = np.full((2, 2), -1)
        cand = np.array([[1.0, 2.0], [3.0, 4.0]])
        cand_ids = np.array([[10, 20], [30, 40]])
        _, new_ids = merge_block(values, ids, cand, cand_ids)
        assert set(new_ids[0]) == {10, 20}
        assert set(new_ids[1]) == {30, 40}

    def test_row_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            merge_block(np.ones((2, 2)), np.ones((2, 2)), np.ones((3, 2)), np.arange(2))

    def test_k_wider_than_union_unsupported_shapes(self):
        # merged width is always >= k because values already has k columns
        values = np.full((1, 3), np.inf)
        ids = np.full((1, 3), -1)
        new_values, _ = merge_block(values, ids, np.array([[1.0]]), np.array([7]))
        assert new_values.shape == (1, 3)
        assert 1.0 in new_values


class TestBatchedNeighborLists:
    def test_matches_per_row_heaps(self, rng):
        """The batch structure must agree with scalar heap semantics."""
        m, k, n = 7, 4, 50
        lists = BatchedNeighborLists(m, k)
        heaps = [BinaryMaxHeap(k) for _ in range(m)]
        ids = np.arange(n)
        for start in range(0, n, 13):
            block_ids = ids[start : start + 13]
            tile = rng.random((m, block_ids.size))
            lists.update(0, tile, block_ids)
            for i in range(m):
                heaps[i].update_many(tile[i], block_ids)
        dist, _ = lists.sorted()
        for i in range(m):
            np.testing.assert_allclose(dist[i], heaps[i].sorted_pairs()[0])

    def test_partial_row_update(self, rng):
        lists = BatchedNeighborLists(10, 2)
        tile = rng.random((4, 5))
        lists.update(3, tile, np.arange(5))
        # rows outside [3, 7) untouched
        assert (lists.ids[:3] == -1).all()
        assert (lists.ids[7:] == -1).all()
        assert (lists.ids[3:7] >= 0).all()

    def test_row_range_validation(self):
        lists = BatchedNeighborLists(4, 2)
        with pytest.raises(ValidationError):
            lists.update(3, np.ones((2, 2)), np.arange(2))

    def test_id_count_validation(self):
        lists = BatchedNeighborLists(2, 2)
        with pytest.raises(ValidationError):
            lists.update(0, np.ones((2, 3)), np.arange(2))

    def test_early_discard_skips_blocks(self):
        lists = BatchedNeighborLists(2, 2)
        lists.update(0, np.array([[0.1, 0.2], [0.3, 0.4]]), np.array([0, 1]))
        merged_before = lists.stats.rows_merged
        # all candidates worse than current max: nothing merges
        lists.update(0, np.array([[5.0, 6.0], [7.0, 8.0]]), np.array([2, 3]))
        assert lists.stats.rows_merged == merged_before
        assert lists.stats.rows_offered == 4

    def test_discard_fraction_increases_with_stream(self, rng):
        lists = BatchedNeighborLists(8, 4)
        for start in range(0, 400, 40):
            tile = rng.random((8, 40))
            lists.update(0, tile, np.arange(start, start + 40))
        assert lists.stats.discard_fraction > 0.5

    def test_is_complete(self, rng):
        lists = BatchedNeighborLists(3, 2)
        assert not lists.is_complete()
        lists.update(0, rng.random((3, 4)), np.arange(4))
        assert lists.is_complete()

    def test_sorted_rows_ascending(self, rng):
        lists = BatchedNeighborLists(5, 6)
        lists.update(0, rng.random((5, 30)), np.arange(30))
        dist, idx = lists.sorted()
        assert (np.diff(dist, axis=1) >= 0).all()
        assert (idx >= 0).all()

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            BatchedNeighborLists(0, 3)
        with pytest.raises(ValidationError):
            BatchedNeighborLists(3, 0)

    def test_candidate_tile_must_be_2d(self):
        lists = BatchedNeighborLists(2, 2)
        with pytest.raises(ValidationError):
            lists.update(0, np.ones(3), np.arange(3))


class TestArenaNeighborLists:
    @staticmethod
    def _pair(m, k):
        return BatchedNeighborLists(m, k), ArenaNeighborLists(
            m, k, WorkspaceArena()
        )

    def test_streaming_matches_batched(self, rng):
        """Cold rows fall back, warm rows take the masked path — the final
        lists must match the legacy structure on tie-free data."""
        m, k, n = 9, 4, 160
        legacy, masked = self._pair(m, k)
        for start in range(0, n, 23):
            ids = np.arange(start, min(start + 23, n))
            tile = rng.random((m, ids.size))
            legacy.update(0, tile, ids)
            masked.update(0, tile, ids)
        ld, li = legacy.sorted()
        md, mi = masked.sorted()
        np.testing.assert_array_equal(md, ld)
        np.testing.assert_array_equal(mi, li)

    def test_warm_seeded_thresholds_match(self, rng):
        """Seeded row_max (the plan's warm start) must behave like legacy
        lists seeded the same way."""
        m, k = 6, 3
        warm = np.full(m, 0.25)
        legacy, masked = self._pair(m, k)
        for lists in (legacy, masked):
            lists.row_max[:] = warm
            lists._touched[:] = True
        tile = rng.random((m, 40))
        ids = np.arange(40)
        legacy.update(0, tile, ids)
        masked.update(0, tile, ids)
        np.testing.assert_array_equal(masked.values, legacy.values)
        np.testing.assert_array_equal(masked.ids, legacy.ids)

    def test_zero_survivors_merge_nothing(self):
        m, k = 3, 2
        _, masked = self._pair(m, k)
        masked.row_max[:] = 0.1
        masked._touched[:] = True
        masked.update(0, np.full((m, 5), 9.0), np.arange(5))
        assert masked.stats.rows_merged == 0
        assert (masked.ids == -1).all()

    def test_partial_row_update_falls_back(self, rng):
        """Rows outside the update window stay cold; the fallback must keep
        them untouched exactly like the legacy structure."""
        legacy, masked = self._pair(10, 2)
        tile = rng.random((4, 5))
        legacy.update(3, tile, np.arange(5))
        masked.update(3, tile, np.arange(5))
        np.testing.assert_array_equal(masked.ids, legacy.ids)
        np.testing.assert_array_equal(masked.values, legacy.values)
