"""Data-parallel GSKNN: parallelizing inside one kernel (paper §2.5).

The paper parallelizes the 4th loop (query blocks): every ``m_c`` block
of queries goes to one core, each core packs a private ``Q_c`` into its
private L2 while the shared ``R_c`` lives in the shared L3. That
decomposition is race-free because a query's neighbor list is touched
by exactly one core.

Parallelizing the *reference* side (3rd/6th loops) would race on the
shared neighbor lists; the paper's footnote resolves it with
per-thread private heaps merged afterwards. Both schemes are
implemented, the second mainly to demonstrate (and test) the merge
resolution.

*Where* the query chunks execute is delegated to an
:class:`~repro.parallel.backends.ExecutionBackend`: ``threads`` (the
default — BLAS blocks release the GIL, so Var#6-heavy work overlaps),
``processes`` (zero-copy shared-memory workers — escapes the GIL for
the selection-heavy Var#1 regime), or ``serial`` (the bit-exact
reference). All backends consume the same chunk list, so results are
identical across them by construction.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import ValidationError
from ..core.gsknn import gsknn, _resolve_auto_variant
from ..core.neighbors import KnnResult, merge_neighbor_lists
from ..core.norms import Norm
from ..obs import trace as _trace
from ..obs.context import coerce_request, current_request, request_scope
from ..obs.efficiency import record_solve_efficiency
from ..obs.metrics import get_registry as _get_registry
from .backends import ExecutionBackend, resolve_backend
from .chunking import contiguous_chunks, resolve_workers

__all__ = ["gsknn_data_parallel", "gsknn_reference_parallel"]


def gsknn_data_parallel(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    p: int | str = 2,
    norm: str | float | Norm = "l2",
    variant: int | str = "auto",
    block_m: int = 1024,
    block_n: int = 2048,
    backend: str | ExecutionBackend = "threads",
    chunks_per_worker: int = 1,
    X2: np.ndarray | None = None,
    deadline=None,
    retry=None,
    fault_plan=None,
    request=None,
    memory_budget=None,
) -> KnnResult:
    """4th-loop (query-side) parallel GSKNN over ``p`` workers.

    Results are identical to the serial kernel — queries are
    partitioned, never shared — and identical *across backends*: all
    three execute the same chunk decomposition. ``p`` may be ``"auto"``
    (the host's core count); ``chunks_per_worker > 1`` over-decomposes
    (``p * chunks_per_worker`` chunks) so uneven per-chunk costs
    rebalance across the pool. The variant is resolved once on the full
    problem shape so chunked sub-kernels cannot disagree with the
    serial kernel's choice.

    Resilience (:mod:`repro.resilience`): ``deadline`` (a
    :class:`~repro.resilience.Deadline` or a budget in seconds) bounds
    the solve, raising :class:`~repro.errors.KernelTimeoutError` instead
    of hanging; ``retry`` (a :class:`~repro.resilience.RetryPolicy`)
    resubmits failed chunks with backend fallback
    (``processes -> threads -> serial``) so a dead worker costs one
    chunk, not the solve; ``fault_plan`` (a
    :class:`~repro.resilience.FaultPlan` or its spec string) injects
    deterministic failures for testing. Passing any of the three — or
    setting ``$REPRO_FAULT_PLAN`` — routes execution through the
    resilient chunk executor; results remain bit-identical because the
    decomposition and variant are unchanged.

    Observability: ``request`` (a
    :class:`~repro.obs.context.RequestContext` or a bare request-id
    string) tags every span, metric label, and error this solve
    produces; without one the ambient scope (if any) is inherited. A
    context carrying a deadline supplies it when the ``deadline``
    argument is omitted. When the metrics registry is enabled the solve
    also records model-anchored efficiency (achieved vs. predicted
    GFLOP/s) under ``efficiency.*``.

    ``memory_budget`` (a :class:`~repro.MemoryBudget`, byte count, or
    spec string) caps the solve's *total* workspace: the limit is split
    evenly across the ``p`` workers and threaded into each chunk's
    kernel call as a plain byte count — picklable, so the processes
    backend enforces it inside its workers too. Each sub-kernel then
    streams reference panels under its share (the out-of-core path;
    pass a memmapped ``X``).
    """
    from ..core.membudget import MemoryBudget
    from ..resilience import Deadline, FaultPlan, solve_chunks_resilient

    p = resolve_workers(p)
    if chunks_per_worker < 1:
        raise ValidationError(
            f"chunks_per_worker must be >= 1, got {chunks_per_worker}"
        )
    q_idx = np.asarray(q_idx, dtype=np.intp)
    r_idx = np.asarray(r_idx, dtype=np.intp)
    d = np.asarray(X).shape[1]
    # Resolve "auto"/"model" on the FULL problem: a model-driven choice
    # made per chunk could differ from the serial kernel's.
    var = _resolve_auto_variant(variant, q_idx.size, r_idx.size, d, k)
    budget = MemoryBudget.coerce(memory_budget)
    kernel_kwargs = dict(
        norm=norm, variant=int(var), block_m=block_m, block_n=block_n,
    )
    if budget is not None:
        # Forwarded as a raw byte count so it crosses the pickle
        # boundary to process workers. In-process backends (serial,
        # threads) share one plan and thus one budget object, so they
        # get the full limit; process workers each coerce a private
        # budget, so the limit is split evenly across the p of them.
        backend_name = (
            backend.lower()
            if isinstance(backend, str)
            else getattr(backend, "name", "threads")
        )
        share = budget.limit_bytes // p if backend_name == "processes" else (
            budget.limit_bytes
        )
        if share < 1:
            raise ValidationError(
                f"memory budget {budget.limit_bytes} too small to split "
                f"across {p} workers"
            )
        kernel_kwargs["memory_budget"] = share
    if X2 is not None:
        kernel_kwargs["X2"] = X2
    ctx = coerce_request(request) or current_request()
    if deadline is None and ctx is not None:
        deadline = ctx.deadline
    deadline = Deadline.coerce(deadline)
    fault_plan = FaultPlan.coerce(fault_plan)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    resilient = (
        deadline is not None or retry is not None or fault_plan is not None
    )
    with request_scope(ctx):
        if not resilient and (p == 1 or q_idx.size <= p):
            return gsknn(X, q_idx, r_idx, k, **kernel_kwargs)

        chunks = contiguous_chunks(q_idx.size, max(p * chunks_per_worker, 1))
        engine = resolve_backend(backend, p)
        t0 = time.perf_counter()
        # the driver span every worker-side span re-parents under
        with _trace.span(
            "solve",
            backend=engine.name,
            p=engine.p,
            m=int(q_idx.size),
            n=int(r_idx.size),
            k=int(k),
            variant=int(var),
        ):
            if resilient:
                result = solve_chunks_resilient(
                    X, q_idx, r_idx, k, chunks, kernel_kwargs,
                    backend=engine.name,
                    p=engine.p,
                    retry=retry,
                    deadline=deadline,
                    fault_plan=fault_plan,
                    mp_context=getattr(engine, "mp_context", None),
                )
            else:
                result = engine.solve_chunks(
                    X, q_idx, r_idx, k, chunks, kernel_kwargs
                )
        registry = _get_registry()
        if registry.enabled:
            record_solve_efficiency(
                q_idx.size, r_idx.size, d, k, var,
                time.perf_counter() - t0,
                scope="solve", registry=registry,
            )
        return result


def gsknn_reference_parallel(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    p: int | str = 2,
    norm: str | float | Norm = "l2",
    block_m: int = 1024,
    block_n: int = 2048,
) -> KnnResult:
    """Reference-side parallel GSKNN with private per-worker lists.

    Each worker processes a slice of the *references* for all queries,
    building private neighbor lists; the partial lists are then merged
    (the paper's footnote-5 race resolution for Xeon Phi's 3rd-loop
    parallelism). Exactness is preserved because min-k is associative
    under the dedup-merge.
    """
    p = resolve_workers(p)
    r_idx = np.asarray(r_idx, dtype=np.intp)
    if k > r_idx.size:
        raise ValidationError(f"k={k} exceeds n={r_idx.size}")
    if p == 1 or r_idx.size < p * k:
        return gsknn(
            X, q_idx, r_idx, k, norm=norm, block_m=block_m, block_n=block_n
        )

    chunks = contiguous_chunks(r_idx.size, p)  # same chunking math, n side

    def worker(chunk: tuple[int, int]) -> KnnResult:
        start, size = chunk
        return gsknn(
            X,
            q_idx,
            r_idx[start : start + size],
            min(k, size),
            norm=norm,
            block_m=block_m,
            block_n=block_n,
        )

    with ThreadPoolExecutor(
        max_workers=resolve_workers(p, len(chunks))
    ) as pool:
        partials = list(pool.map(worker, chunks))

    # Pad any short partial lists (chunk smaller than k) to width k, then
    # fold them together with the dedup merge.
    def widen(res: KnnResult) -> KnnResult:
        if res.k == k:
            return res
        pad = k - res.k
        dist = np.pad(res.distances, ((0, 0), (0, pad)), constant_values=np.inf)
        idx = np.pad(res.indices, ((0, 0), (0, pad)), constant_values=-1)
        return KnnResult(dist, idx)

    merged = widen(partials[0])
    for part in partials[1:]:
        merged = merge_neighbor_lists(merged, widen(part))
    return merged
