"""Persistent per-host autotuning (blocking, workers, variant switch).

The paper derives its blocking analytically for one machine; this
package *measures* the running host instead and remembers the answer:

* :class:`~repro.tune.autotuner.Autotuner` — guided three-stage search
  (blocking -> execution backend/workers -> Var#1/Var#6 switch-``k``),
  instrumented through the observability layer;
* :mod:`repro.tune.store` — the schema-versioned JSON cache, keyed by a
  host fingerprint so stale or foreign entries are never applied;
* ``gsknn(..., blocking="tuned")`` loads the cache transparently and
  falls back to the built-in defaults when no entry matches.

Command line: ``repro-gsknn tune --budget small`` runs a search and
persists the winner (see ``docs/TUNING.md``).
"""

from .autotuner import BUDGETS, Autotuner, TuneBudget, TuneReport
from .store import (
    TUNE_SCHEMA_VERSION,
    TunedConfig,
    default_cache_path,
    fingerprint_key,
    host_fingerprint,
    load_tuned_config,
    save_tuned_config,
)

__all__ = [
    "Autotuner",
    "TuneBudget",
    "TuneReport",
    "BUDGETS",
    "TunedConfig",
    "TUNE_SCHEMA_VERSION",
    "host_fingerprint",
    "fingerprint_key",
    "default_cache_path",
    "save_tuned_config",
    "load_tuned_config",
]
