"""Unit tests for panel packing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gemm import (
    gather_panel,
    pack_block,
    pack_micropanels,
    unpack_micropanels,
)


class TestGatherPanel:
    def test_gathers_rows_and_columns(self, rng):
        X = rng.random((20, 10))
        idx = np.array([3, 1, 7])
        panel = gather_panel(X, idx, 2, 6)
        np.testing.assert_array_equal(panel, X[idx, 2:6])
        assert panel.flags["C_CONTIGUOUS"]

    def test_full_width_default(self, rng):
        X = rng.random((5, 4))
        panel = gather_panel(X, np.array([0, 4]))
        np.testing.assert_array_equal(panel, X[[0, 4]])

    def test_duplicate_indices(self, rng):
        X = rng.random((5, 3))
        panel = gather_panel(X, np.array([2, 2, 2]))
        assert (panel == X[2]).all()

    def test_invalid_column_range(self, rng):
        X = rng.random((4, 4))
        with pytest.raises(ValidationError):
            gather_panel(X, np.array([0]), 3, 2)
        with pytest.raises(ValidationError):
            gather_panel(X, np.array([0]), 0, 5)

    def test_non_2d_rejected(self):
        with pytest.raises(ValidationError):
            gather_panel(np.ones(4), np.array([0]))


class TestPackBlock:
    def test_packs_coordinates_and_norms(self, rng):
        X = rng.random((10, 6))
        X2 = (X**2).sum(axis=1)
        idx = np.array([9, 0, 5])
        panel, norms = pack_block(X, idx, 1, 4, X2)
        np.testing.assert_array_equal(panel, X[idx, 1:4])
        np.testing.assert_allclose(norms, X2[idx])

    def test_norms_skipped_when_not_given(self, rng):
        X = rng.random((4, 3))
        panel, norms = pack_block(X, np.array([1]), 0, 3)
        assert norms is None

    def test_bad_norm_table(self, rng):
        X = rng.random((4, 3))
        with pytest.raises(ValidationError):
            pack_block(X, np.array([1]), 0, 3, np.ones(3))


class TestMicropanels:
    @pytest.mark.parametrize("rows,r", [(8, 4), (9, 4), (3, 4), (1, 1), (7, 3)])
    def test_round_trip(self, rng, rows, r):
        panel = rng.random((rows, 5))
        packed = pack_micropanels(panel, r)
        np.testing.assert_array_equal(unpack_micropanels(packed, rows), panel)

    def test_z_layout(self, rng):
        """packed[p, j, i] must equal panel[p*r + i, j]."""
        panel = rng.random((6, 4))
        packed = pack_micropanels(panel, 2)
        assert packed.shape == (3, 4, 2)
        for p in range(3):
            for j in range(4):
                for i in range(2):
                    assert packed[p, j, i] == panel[p * 2 + i, j]

    def test_ragged_tail_zero_padded(self, rng):
        panel = rng.random((5, 3))
        packed = pack_micropanels(panel, 4)
        assert packed.shape == (2, 3, 4)
        # last panel rows 1..3 are padding
        np.testing.assert_array_equal(packed[1, :, 1:], 0.0)

    def test_depth_slices_are_register_vectors(self, rng):
        """One depth step of a panel is the r-vector the micro-kernel
        loads — consecutive points' same coordinate."""
        panel = rng.random((4, 3))
        packed = pack_micropanels(panel, 4)
        np.testing.assert_array_equal(packed[0, 1, :], panel[:, 1])

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            pack_micropanels(np.ones(3), 2)
        with pytest.raises(ValidationError):
            pack_micropanels(np.ones((2, 2)), 0)
        with pytest.raises(ValidationError):
            unpack_micropanels(np.ones((1, 2, 2)), 5)
