"""Algorithm 2.1 — the GEMM-based reference kNN kernel.

The state-of-the-art baseline GSKNN is measured against: gather the
query/reference coordinates into dense matrices, call the vendor GEMM
for the cross terms, accumulate the squared norms over the full ``m x n``
matrix, then select per row. Each phase is timed separately so the
Table 5 breakdown (``T_coll + T_gemm + T_sq2d + T_heap``) can be
reported.

Two selection backends are provided: ``"partition"`` (vectorized
``np.argpartition``, this platform's analogue of an optimized library
select — the fair-fight baseline) and ``"heap"`` (the scalar
STL-priority-queue-style per-row max heap, the paper's "MKL + STL"
configuration; dramatically slower from Python and used for semantics
and small-size benches).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..gemm.packing import gather_panel
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..perf.timer import PhaseTimer
from ..select.heap import BinaryMaxHeap
from ..validation import as_coordinate_table, as_index_array, check_finite, check_k
from .neighbors import KnnResult
from .norms import Norm, pairwise_lp, resolve_norm, squared_norms

__all__ = ["ref_knn", "ref_knn_timed"]


def _select_partition(C: np.ndarray, r_idx: np.ndarray, k: int) -> KnnResult:
    """Row-wise top-k via introselect, then sort the k survivors."""
    m, n = C.shape
    if k < n:
        part = np.argpartition(C, k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(n), (m, n)).copy()
    rows = np.arange(m)[:, None]
    dist = C[rows, part]
    order = np.argsort(dist, axis=1, kind="stable")
    dist = dist[rows, order]
    idx = r_idx[part[rows, order]]
    return KnnResult(dist, idx)


def _select_heap(C: np.ndarray, r_idx: np.ndarray, k: int) -> KnnResult:
    """Row-wise top-k by streaming each row through a scalar max heap."""
    m, n = C.shape
    dist = np.empty((m, k), dtype=np.float64)
    idx = np.empty((m, k), dtype=np.intp)
    for i in range(m):
        heap = BinaryMaxHeap(k)
        heap.update_many(C[i], r_idx)
        dist[i], idx[i] = heap.sorted_pairs()
    return KnnResult(dist, idx)


_SELECTORS = {"partition": _select_partition, "heap": _select_heap}


def ref_knn_timed(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    norm: str | float | Norm = "l2",
    selection: str = "partition",
    X2: np.ndarray | None = None,
) -> tuple[KnnResult, PhaseTimer]:
    """Run Algorithm 2.1 and return ``(result, phase timer)``.

    Parameters mirror :func:`repro.core.gsknn.gsknn`; see there for the
    shared conventions (row-major ``X``, global index arrays, squared-l2
    distances).
    """
    X = as_coordinate_table(X)
    check_finite(X)
    q_idx = as_index_array(q_idx, X.shape[0], name="q_idx")
    r_idx = as_index_array(r_idx, X.shape[0], name="r_idx")
    k = check_k(k, r_idx.size)
    norm = resolve_norm(norm)
    if selection not in _SELECTORS:
        raise ValidationError(
            f"selection must be one of {sorted(_SELECTORS)}, got {selection!r}"
        )
    select = _SELECTORS[selection]
    timer = PhaseTimer()

    # Phase 1 (T_coll): collect the scattered points into dense matrices.
    with timer.phase("coll"), _trace.span("coll", m=q_idx.size, n=r_idx.size):
        Q = gather_panel(X, q_idx)
        R = gather_panel(X, r_idx)
        if norm.is_l2 or norm.is_cosine:
            if X2 is not None:
                X2 = np.asarray(X2, dtype=np.float64)
                Q2, R2 = X2[q_idx], X2[r_idx]
            else:
                Q2, R2 = squared_norms(Q), squared_norms(R)

    if norm.is_l2:
        # Phase 2 (T_gemm): C = -2 Q R^T via the vendor GEMM.
        with timer.phase("gemm"), _trace.span("gemm"):
            C = Q @ R.T
            C *= -2.0
        # Phase 3 (T_sq2d): C(i, j) += Q2(i) + R2(j), full-matrix pass.
        with timer.phase("sq2d"), _trace.span("sq2d"):
            C += Q2[:, None]
            C += R2[None, :]
            np.maximum(C, 0.0, out=C)
    elif norm.is_cosine:
        # Cosine is the GEMM approach's other supported metric (§1):
        # the same inner-product GEMM, normalized instead of expanded.
        with timer.phase("gemm"), _trace.span("gemm"):
            C = Q @ R.T
        with timer.phase("sq2d"), _trace.span("sq2d"):
            denom = np.sqrt(np.maximum(Q2[:, None] * R2[None, :], 0.0))
            with np.errstate(divide="ignore", invalid="ignore"):
                np.divide(C, denom, out=C)
            C[denom == 0.0] = 0.0
            np.clip(C, -1.0, 1.0, out=C)
            np.subtract(1.0, C, out=C)
    else:
        # Non-l2 norms have no GEMM expansion — the baseline computes the
        # full distance matrix directly (this is what rules GEMM-based
        # kernels out for general lp, §1).
        with timer.phase("gemm"), _trace.span("gemm", lp=True):
            C = pairwise_lp(Q, R, norm.p)

    # Phase 4 (T_heap): per-row selection.
    with timer.phase("heap"), _trace.span("heap", selection=selection):
        result = select(C, r_idx, k)
    registry = _get_registry()
    if registry.enabled:
        # Phases are NOT auto-absorbed here: the tracer's spans are the
        # single source of phase truth when observability is on (the CLI
        # folds them via absorb_tracer), and double-absorbing the timer
        # would double every phase.* histogram. Benchmarks that want the
        # timer in a registry call absorb_phase_timer explicitly.
        registry.inc("ref_knn.calls")
    return result, timer


def ref_knn(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    norm: str | float | Norm = "l2",
    selection: str = "partition",
    X2: np.ndarray | None = None,
) -> KnnResult:
    """Algorithm 2.1 (GEMM approach): exact kNN of queries among references.

    Returns a :class:`~repro.core.neighbors.KnnResult` with rows sorted
    ascending. See :func:`ref_knn_timed` to also get the phase breakdown.
    """
    result, _ = ref_knn_timed(
        X, q_idx, r_idx, k, norm=norm, selection=selection, X2=X2
    )
    return result
