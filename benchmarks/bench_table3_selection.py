"""Table 3 — selection-algorithm complexity, measured.

The paper states per-algorithm complexities (heap: n best / n log k
worst; quickselect: n + k average with (n+k)^2 worst; merge sort:
n log k always). Here each algorithm runs over three candidate
streams — best case (ascending after the first k: every candidate
rejected at the heap root), random, and worst case (descending: every
candidate enters the heap) — and the *measured comparison counts* are
printed next to the asymptotic forms they should track.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.select import (
    SelectionStats,
    heap_select_smallest,
    merge_select,
    quickselect_smallest,
)

from .conftest import run_report, SCALE

N = 4096 * SCALE
K = 64


def _streams(n):
    rng = np.random.default_rng(0)
    return {
        "best (ascending)": np.sort(rng.random(n)),
        "random": rng.random(n),
        "worst (descending)": np.sort(rng.random(n))[::-1].copy(),
    }


def _comparisons(select, values, k):
    stats = SelectionStats()
    select(values, k, stats=stats)
    return stats.comparisons


def test_table3_rows(benchmark, report):
    def _run():
        import math

        rep = report(
            "table3_selection",
            f"Table 3 (measured comparisons, n={N}, k={K})\n"
            f"{'method':>12} {'best':>12} {'random':>12} {'worst':>12}"
            f"   reference: n={N}, n log2 k={int(N * math.log2(K))}",
        )
        streams = _streams(N)
        for name, select in [
            ("heap", heap_select_smallest),
            ("quick", quickselect_smallest),
            ("merge", merge_select),
        ]:
            counts = [
                _comparisons(select, streams[s], K)
                for s in ("best (ascending)", "random", "worst (descending)")
            ]
            rep.row(f"{name:>12} " + "".join(f"{c:>12}" for c in counts))


    run_report(benchmark, _run)


class TestComplexityShapes:
    def test_heap_best_case_linear(self):
        """Ascending stream: after the first k inserts every candidate is
        rejected with one root comparison -> ~n comparisons total."""
        comparisons = _comparisons(
            heap_select_smallest, _streams(N)["best (ascending)"], K
        )
        assert comparisons < 2.5 * N

    def test_heap_worst_case_n_log_k(self):
        import math

        comparisons = _comparisons(
            heap_select_smallest, _streams(N)["worst (descending)"], K
        )
        assert comparisons > 3 * N  # far above the best case
        assert comparisons < 4 * N * math.log2(K)

    def test_merge_cost_insensitive_to_input_order(self):
        streams = _streams(N)
        best = _comparisons(merge_select, streams["best (ascending)"], K)
        worst = _comparisons(merge_select, streams["worst (descending)"], K)
        assert abs(best - worst) < 0.35 * worst

    def test_quickselect_average_linear(self):
        comparisons = _comparisons(quickselect_smallest, _streams(N)["random"], K)
        assert comparisons < 8 * (N + K)

    def test_heap_beats_merge_on_random_stream(self):
        """The reason GSKNN embeds a heap and not a merge network: on a
        random stream (the kernel's case) the heap's reject path does
        asymptotically less work."""
        streams = _streams(N)
        heap = _comparisons(heap_select_smallest, streams["random"], K)
        merge = _comparisons(merge_select, streams["random"], K)
        assert heap < merge


@pytest.mark.parametrize(
    "name,select",
    [
        ("heap", heap_select_smallest),
        ("quick", quickselect_smallest),
        ("merge", merge_select),
    ],
)
def test_bench_selection(benchmark, name, select):
    rng = np.random.default_rng(1)
    values = rng.random(N)
    benchmark.group = f"table3 selection n={N} k={K}"
    benchmark.name = name
    benchmark(lambda: select(values, K))
