"""Register-transfer-level simulation of the AVX rank-1 update (Figure 3).

The paper's Figure 3 shows how one rank-1 update of a 4 x 4 register
tile is computed with four VFMA instructions interleaved with register
permutations: load ``Q_r = (q0..q3)`` and ``R_r = (r0..r3)``, then each
VFMA multiplies ``Q_r`` element-wise with a *permutation* of ``R_r``,
accumulating one (wrapped) diagonal of ``C_r`` per step. After the
rank-d_c loop the four accumulators are permuted back to row order.

This module executes that instruction sequence literally — vector
registers are length-4 arrays, and the only operations used are the
SIMD primitives the hardware has (element-wise FMA, in-lane SHUFFLE,
cross-lane PERMUTE2F128) — so the tests can verify that the paper's
shuffle choreography really computes the outer product, and count
instructions per update (4 FMAs + 3 permutes per rank-1, the basis of
the §2.4 latency argument).

Lane bookkeeping: with the rotation sequence used here, accumulator
``acc_s`` holds ``C[i, (i + s) mod 4]`` in lane ``i`` — the wrapped
diagonals — and :func:`diagonals_to_tile` inverts that mapping (the
"permute C_r back to original order" step).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError

__all__ = ["AvxSim", "rank1_update_4x4", "diagonals_to_tile", "rank_dc_update_4x4"]

_WIDTH = 4  # 4 doubles per 256-bit AVX register


@dataclass
class AvxSim:
    """Counts the SIMD instructions a simulated sequence issues."""

    vfma: int = 0
    shuffle: int = 0  # in-lane swaps (VSHUFPD-class)
    permute2f128: int = 0  # cross-lane 128-bit swaps
    vload: int = 0

    # -- primitive instructions -------------------------------------------

    def load(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (_WIDTH,):
            raise ValidationError(
                f"a vector register holds {_WIDTH} doubles, got {values.shape}"
            )
        self.vload += 1
        return values.copy()

    def fma(
        self, acc: np.ndarray, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """acc + a * b, element-wise — one VFMA (or VMUL+VADD pair)."""
        self.vfma += 1
        return acc + a * b

    def shuffle_in_lane(self, reg: np.ndarray) -> np.ndarray:
        """Swap the two doubles inside each 128-bit lane (imm 0x5):
        (a, b, c, d) -> (b, a, d, c)."""
        self.shuffle += 1
        return reg[[1, 0, 3, 2]]

    def swap_lanes(self, reg: np.ndarray) -> np.ndarray:
        """Exchange the 128-bit halves (VPERM2F128 imm 0x1):
        (a, b, c, d) -> (c, d, a, b)."""
        self.permute2f128 += 1
        return reg[[2, 3, 0, 1]]

    @property
    def total(self) -> int:
        return self.vfma + self.shuffle + self.permute2f128 + self.vload


def rank1_update_4x4(
    sim: AvxSim,
    accumulators: list[np.ndarray],
    q: np.ndarray,
    r: np.ndarray,
) -> list[np.ndarray]:
    """One Figure 3 rank-1 step: 4 VFMAs over rotations of ``R_r``.

    ``accumulators[s]`` carries the wrapped diagonal ``C[i, (i+s)%4]``.
    The rotation schedule (identity, in-lane swap, lane swap, both)
    produces, in lane ``i``, the ``r`` element at column ``(i+s) % 4``:

    ======  =================  ==========================
    step s  permutation        lane i multiplies r[...]
    ======  =================  ==========================
    0       identity           r[i]
    1       shuffle (0x5)      r[i xor 1]
    2       lanes  (0x1)       r[i xor 2]
    3       shuffle of step 2  r[i xor 3]
    ======  =================  ==========================

    (xor-indexed rather than rotate-indexed — the standard AVX trick,
    since xor patterns are what single shuffle instructions provide.)
    """
    if len(accumulators) != _WIDTH:
        raise ValidationError(f"need {_WIDTH} accumulators")
    perm0 = r
    perm1 = sim.shuffle_in_lane(perm0)
    perm2 = sim.swap_lanes(perm0)
    perm3 = sim.shuffle_in_lane(perm2)
    perms = [perm0, perm1, perm2, perm3]
    return [sim.fma(acc, q, perm) for acc, perm in zip(accumulators, perms)]


def diagonals_to_tile(accumulators: list[np.ndarray]) -> np.ndarray:
    """Un-permute the xor-diagonal accumulators into the 4 x 4 tile.

    ``accumulators[s]`` lane ``i`` holds ``C[i, i xor s]``.
    """
    if len(accumulators) != _WIDTH:
        raise ValidationError(f"need {_WIDTH} accumulators")
    tile = np.empty((_WIDTH, _WIDTH), dtype=np.float64)
    for s, acc in enumerate(accumulators):
        for i in range(_WIDTH):
            tile[i, i ^ s] = acc[i]
    return tile


def rank_dc_update_4x4(
    Q_panel: np.ndarray,
    R_panel: np.ndarray,
    sim: AvxSim | None = None,
) -> tuple[np.ndarray, AvxSim]:
    """Full rank-``d_b`` update of a 4 x 4 tile via the Figure 3 sequence.

    ``Q_panel``/``R_panel`` are ``(d_b, 4)`` packed micro-panels (one
    register load per depth step per side). Returns ``(C_tile, sim)``
    with ``C_tile = Q_panel^T @ R_panel`` computed purely through the
    simulated SIMD instructions.
    """
    Q_panel = np.asarray(Q_panel, dtype=np.float64)
    R_panel = np.asarray(R_panel, dtype=np.float64)
    if (
        Q_panel.ndim != 2
        or Q_panel.shape[1] != _WIDTH
        or R_panel.shape != Q_panel.shape
    ):
        raise ValidationError(
            f"panels must both be (d_b, {_WIDTH}), got "
            f"{Q_panel.shape} and {R_panel.shape}"
        )
    sim = sim if sim is not None else AvxSim()
    accumulators = [np.zeros(_WIDTH) for _ in range(_WIDTH)]
    for p in range(Q_panel.shape[0]):
        q = sim.load(Q_panel[p])
        r = sim.load(R_panel[p])
        accumulators = rank1_update_4x4(sim, accumulators, q, r)
    return diagonals_to_tile(accumulators), sim
