"""GSKNN — the fused General Stride k-Nearest Neighbors kernel.

Two implementations of Algorithm 2.2 live here:

* :func:`gsknn` — the production path. It preserves the two properties
  that give GSKNN its advantage over the GEMM approach — distances are
  consumed *block by block* (the ``m x n`` matrix is never materialized
  for Var#1) and candidates are filtered against the per-query heap root
  before any selection work — but expresses each cache block with one
  BLAS call and one batched merge, which is the efficient granularity
  for numpy (per-register-tile Python loops would be interpreter-bound).

* :func:`gsknn_exact_loops` — the faithful six-loop structure with
  Z-packed micro-panels, an ``m_r x n_r`` register tile, per-query
  scalar heaps and the Var#1 fused tail, exactly as Algorithms 2.2/2.3
  specify. It is the semantic reference the fast path and the trace
  simulator are validated against, and is intended for small problems.

Both accept the paper's general-stride interface: the coordinate table
``X`` plus *index arrays* ``q_idx``/``r_idx``; gathering happens inside
the kernel (fused with packing), never as a separate caller-side pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..config import BlockingParams, TEST_BLOCKING, iter_blocks
from ..errors import ValidationError
from ..gemm.packing import pack_micropanels
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..select.heap import BinaryMaxHeap, DHeap
from ..validation import as_coordinate_table, as_index_array, check_finite, check_k
from . import microkernel
from .neighbors import KnnResult
from .norms import Norm, resolve_norm, squared_norms
from .variants import Variant, VARIANT_INFO, resolve_variant

__all__ = [
    "gsknn",
    "gsknn_exact_loops",
    "GsknnStats",
    "DEFAULT_VARIANT_SWITCH_K",
    "NUMPY_VARIANT_SWITCH_K",
]

#: The paper's production rule (§3): Var#1 for k <= 512, Var#6 above.
DEFAULT_VARIANT_SWITCH_K = 512

#: Switch point of the *numpy fast path*. The Table 4 model prices Var#1's
#: selection as per-candidate heap latency, but this path's selection is
#: batched introselect merges whose cost grows more slowly with k, so the
#: measured crossover sits higher than the model's prediction (256 vs
#: ~64-200 across hosts we measured). "auto" uses this empirical rule;
#: pass variant="model" for the Table 4 prediction or "paper" for the
#: static k <= 512 rule.
NUMPY_VARIANT_SWITCH_K = 256


@dataclass
class GsknnStats:
    """Execution statistics of one fused-kernel run."""

    variant: Variant
    blocks: int = 0
    candidates_offered: int = 0
    candidates_discarded: int = 0
    m: int = 0
    n: int = 0
    d: int = 0

    @property
    def discard_fraction(self) -> float:
        if self.candidates_offered == 0:
            return 0.0
        return self.candidates_discarded / self.candidates_offered

    def counters(self):
        """This run's work as a :class:`~repro.perf.counters.KernelCounters`.

        Flops are the exact useful count ``(2d + 3) m n``; slow-memory
        doubles follow the Var#1/Var#6 accounting (gathered operands for
        both, plus the stored matrix for Var#6); heap/discard tallies
        come from the run itself.
        """
        from ..perf.counters import KernelCounters

        slow_reads = self.d * (self.m + self.n) + self.m + self.n  # X + X2
        slow_writes = 0
        if self.variant is Variant.VAR6:
            slow_writes += self.m * self.n  # the stored distance matrix
            slow_reads += self.m * self.n  # re-read during selection
        return KernelCounters(
            flops=(2 * self.d + 3) * self.m * self.n,
            slow_reads=slow_reads,
            slow_writes=slow_writes,
            heap_updates=self.candidates_offered - self.candidates_discarded,
            discarded=self.candidates_discarded,
        )


def _resolve_auto_variant(
    variant: int | str | Variant,
    m: int,
    n: int,
    d: int,
    k: int,
    switch_k: int | None = None,
) -> Variant:
    """``"auto"`` = the numpy fast path's empirical threshold (or the
    per-host tuned ``switch_k`` when one is supplied);
    ``"model"`` = Table 4's predicted threshold (Figure 5's rule);
    ``"paper"`` = the static production rule of §3 (Var#1 iff k <= 512)."""
    if isinstance(variant, str):
        key = variant.lower()
        if key == "auto":
            threshold = (
                NUMPY_VARIANT_SWITCH_K if switch_k is None else switch_k
            )
            return Variant.VAR1 if k <= threshold else Variant.VAR6
        if key == "model":
            # Lazy import: the model would otherwise create an import
            # cycle at package-init time.
            from ..model.perf_model import PerformanceModel

            return PerformanceModel().select_variant(m, n, d, k)
        if key == "paper":
            from .tuning import select_variant_heuristic

            return select_variant_heuristic(k, d)
    return resolve_variant(variant)


def _apply_blocking(
    blocking, block_m: int, block_n: int
) -> tuple[int, int, int | None]:
    """Resolve the ``blocking`` selector into concrete block sizes.

    Returns ``(block_m, block_n, switch_k)`` where ``switch_k`` is the
    tuned Var#1/Var#6 threshold (``None`` when untuned — callers then
    keep :data:`NUMPY_VARIANT_SWITCH_K`). ``"tuned"`` with no matching
    cache entry is a clean fallback to the passed defaults, counted in
    the metrics registry so a fleet can see how many hosts run untuned.
    """
    if blocking is None:
        return block_m, block_n, None
    if isinstance(blocking, str):
        key = blocking.lower()
        if key == "default":
            return block_m, block_n, None
        if key != "tuned":
            raise ValidationError(
                f"blocking must be 'tuned', 'default', None, or a "
                f"TunedConfig, got {blocking!r}"
            )
        from ..tune.store import load_tuned_config

        config = load_tuned_config()
        registry = _get_registry()
        if config is None:
            if registry.enabled:
                registry.inc("tune.cache_misses")
            return block_m, block_n, None
        if registry.enabled:
            registry.inc("tune.cache_hits")
        return config.block_m, config.block_n, config.switch_k
    # duck-typed TunedConfig (avoids importing repro.tune at call time)
    try:
        return (
            int(blocking.block_m),
            int(blocking.block_n),
            int(blocking.switch_k),
        )
    except AttributeError:
        raise ValidationError(
            f"blocking must be 'tuned', 'default', None, or a "
            f"TunedConfig, got {blocking!r}"
        ) from None


def gsknn(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    norm: str | float | Norm = "l2",
    variant: int | str | Variant = "auto",
    X2: np.ndarray | None = None,
    block_m: int = 1024,
    block_n: int = 2048,
    blocking: str | object | None = None,
    initial: KnnResult | None = None,
    return_stats: bool = False,
    request=None,
    memory_budget=None,
) -> KnnResult | tuple[KnnResult, GsknnStats]:
    """Exact k nearest neighbors of ``X[q_idx]`` among ``X[r_idx]``, fused.

    Parameters
    ----------
    X:
        ``(N, d)`` coordinate table (row = point).
    q_idx, r_idx:
        Global indices of the ``m`` query and ``n`` reference points.
        Duplicates are allowed; results carry these *global* ids.
    k:
        Neighbors per query, ``1 <= k <= len(r_idx)``.
    norm:
        ``"l2"`` (default; distances returned are *squared*), ``"l1"``,
        ``"linf"``, or any ``p > 0``.
    variant:
        ``"auto"`` (this path's empirical Var#1/Var#6 threshold,
        ``NUMPY_VARIANT_SWITCH_K``), ``"model"`` (Table 4's predicted
        threshold — Figure 5's rule), ``"paper"`` (the static §3 rule:
        Var#1 iff k <= 512), or an explicit 1/5/6 — only Var#1, Var#5
        and Var#6 are executable (see :mod:`repro.core.variants` for
        why the others never win).
    X2:
        Optional precomputed squared norms ``X2[i] = |X[i]|^2`` (the
        paper's global side table; avoids recomputation across kernel
        calls). Ignored for non-l2 norms.
    block_m, block_n:
        Cache-block sizes of the fast path (the numpy-scale analogues of
        ``m_c``/``n_c``).
    blocking:
        ``"tuned"`` loads this host's persisted autotuner result
        (:mod:`repro.tune`) and applies its block sizes — and, when
        ``variant="auto"``, its measured Var#1/Var#6 switch-``k`` —
        falling back to the defaults cleanly when no cache entry
        matches this host. A :class:`~repro.tune.TunedConfig` instance
        applies directly; ``None``/``"default"`` uses ``block_m`` /
        ``block_n`` as passed.
    initial:
        Existing ``(m, k)`` neighbor lists to *update* — the paper's
        kernel semantics ("update the neighbor lists of the queries").
        Losslessly accelerates Var#1: a candidate can only enter the
        merged list if it beats the initial list's k-th distance, so
        the root filter starts warm instead of accepting everything;
        the returned lists are the dedup-merge of ``initial`` with the
        new candidates. Ids in ``initial`` must be globally consistent
        with ``r_idx``'s id space.
    return_stats:
        Also return a :class:`GsknnStats` with early-discard counters.
    request:
        Optional :class:`~repro.obs.context.RequestContext` (or bare
        request-id string): tags the kernel's spans and metrics with the
        originating request. Without it any ambient scope is inherited.
    memory_budget:
        A :class:`~repro.MemoryBudget`, byte count, or spec string
        (``"64MiB"``) capping this call's workspace. The call then runs
        through a budget-charging arena with reference panels streamed
        per-tile from ``X`` — pass a memmapped table (see
        ``load_dataset(mmap_mode=...)``) to solve against datasets
        larger than RAM. Results are bit-identical to the unbudgeted
        path at the same block sizes; an infeasible combination raises
        :class:`~repro.errors.MemoryBudgetError` instead of OOMing.

    Returns
    -------
    :class:`~repro.core.neighbors.KnnResult` — rows sorted ascending —
    and, if requested, the run statistics.
    """
    X = as_coordinate_table(X)
    check_finite(X)
    q_idx = as_index_array(q_idx, X.shape[0], name="q_idx")
    r_idx = as_index_array(r_idx, X.shape[0], name="r_idx")
    k = check_k(k, r_idx.size)
    norm = resolve_norm(norm)
    block_m, block_n, tuned_switch_k = _apply_blocking(
        blocking, block_m, block_n
    )
    if block_m < 1 or block_n < 1:
        raise ValidationError("block_m and block_n must be >= 1")
    if initial is not None:
        if initial.distances.shape != (q_idx.size, k):
            raise ValidationError(
                f"initial lists must be shape ({q_idx.size}, {k}), got "
                f"{initial.distances.shape}"
            )
    var = _resolve_auto_variant(
        variant, q_idx.size, r_idx.size, X.shape[1], k,
        switch_k=tuned_switch_k,
    )
    info = VARIANT_INFO[var]
    if var not in (Variant.VAR1, Variant.VAR5, Variant.VAR6):
        raise ValidationError(
            f"Var#{int(var)} is not executable: {info.notes}"
        )

    m, n = q_idx.size, r_idx.size

    # One-shot calls run through an *ephemeral* plan (lazy import: the
    # plan module imports this one at load time). Panels are gathered
    # per block as before and the NullArena allocates fresh buffers, so
    # this path's work, spans and memory profile are exactly the
    # historical fast path's; the plan layer just owns the loop nest.
    # Callers with repeated queries build a GsknnPlan and keep it.
    from .arena import NullArena
    from .membudget import MemoryBudget
    from .plan import GsknnPlan

    budget = MemoryBudget.coerce(memory_budget)
    plan = GsknnPlan(
        X,
        r_idx,
        norm=norm,
        X2=X2,
        block_m=block_m,
        block_n=block_n,
        cache_panels=False,
        track_staleness=False,
        validate=False,
        memory_budget=budget,
    )
    if budget is not None:
        var = plan._budget_variant(var, m, variant)
    stats = GsknnStats(variant=var, m=m, n=n, d=X.shape[1])
    from ..obs.context import coerce_request, request_scope

    with request_scope(coerce_request(request)):
        t0 = time.perf_counter()
        with _trace.span(
            "gsknn", variant=int(var), m=m, n=n, d=X.shape[1], k=k
        ):
            if budget is None:
                result = plan._execute_impl(
                    q_idx, k, var, initial, "legacy", NullArena(), stats
                )
            else:
                # Budgeted one-shot: a real (budget-charging) arena and
                # the masked select — panels stream from X per tile, so
                # a memmapped table never materializes in RAM.
                with plan.arena_pool.borrow() as arena:
                    result = plan._execute_impl(
                        q_idx, k, var, initial, "masked", arena, stats
                    )

        registry = _get_registry()
        if registry.enabled:
            from ..obs.adapters import absorb_gsknn_stats
            from ..obs.efficiency import record_solve_efficiency

            absorb_gsknn_stats(stats, registry)
            record_solve_efficiency(
                m, n, X.shape[1], k, int(var),
                time.perf_counter() - t0,
                scope="kernel", registry=registry,
            )
    if return_stats:
        return result, stats
    return result


def _reference_block(
    X: np.ndarray,
    r_block: np.ndarray,
    norm: Norm,
    X2: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Pack one reference block (coordinates + norms) from the table."""
    Rc = X[r_block]
    if not (norm.is_l2 or norm.is_cosine):
        return Rc, None
    if X2 is not None:
        return Rc, X2[r_block]
    return Rc, squared_norms(Rc)


def gsknn_exact_loops(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    norm: str | float | Norm = "l2",
    variant: int | str | Variant = Variant.VAR1,
    blocking: BlockingParams = TEST_BLOCKING,
    heap_arity: int | None = None,
    X2: np.ndarray | None = None,
) -> KnnResult:
    """The faithful six-loop Algorithm 2.2/2.3 with Z-packed micro-panels.

    Loop-for-loop and tile-for-tile the paper's structure: packed
    ``Q_c``/``R_c`` micro-panels, an ``m_r x n_r`` register tile
    accumulated across ``d_c`` depth blocks in a ``C_c`` buffer, norms
    gathered only on the last depth block, and the heap selection placed
    after the loop the chosen variant names:

    * Var#1 — fused in the micro-kernel tail (Algorithm 2.3);
    * Var#2 — after the 2nd loop (a complete ``m_b x n_r`` strip);
    * Var#3 — after the 3rd loop (a complete ``m_b x n_b`` block);
    * Var#5 — after the 5th loop (a complete ``m x n_b`` slab);
    * Var#6 — after the 6th loop (the full ``m x n`` matrix, streamed
      through a 4-heap — the paper's large-k configuration).

    Var#4 is rejected: the 5th loop blocks the d dimension, so no
    complete distances exist at that point (§2.3). All executable
    placements return identical results — the property the tests pin —
    differing only in buffering and locality, which is the entire
    subject of the paper's variant analysis.

    Python-loop bound: use for small problems (tests, trace validation).
    """
    X = as_coordinate_table(X)
    check_finite(X)
    q_idx = as_index_array(q_idx, X.shape[0], name="q_idx")
    r_idx = as_index_array(r_idx, X.shape[0], name="r_idx")
    k = check_k(k, r_idx.size)
    norm = resolve_norm(norm)
    var = _resolve_auto_variant(variant, q_idx.size, r_idx.size, X.shape[1], k)
    if var is Variant.VAR4:
        raise ValidationError(
            "Var#4 is not executable: " + VARIANT_INFO[Variant.VAR4].notes
        )
    fused = var is Variant.VAR1
    if heap_arity is None:
        heap_arity = 2 if fused else 4  # paper §2.4: binary small k, 4-heap large k

    m, n, d = q_idx.size, r_idx.size, X.shape[1]
    blk = blocking
    if norm.is_l2 or norm.is_cosine:
        table_norms = squared_norms(X) if X2 is None else np.asarray(X2, np.float64)
    heaps: list[BinaryMaxHeap | DHeap] = [
        BinaryMaxHeap(k) if heap_arity == 2 else DHeap(k, arity=heap_arity)
        for _ in range(m)
    ]
    C_full = np.zeros((m, n), dtype=np.float64) if var is Variant.VAR6 else None

    for j_c, n_b in iter_blocks(n, blk.n_c):  # 6th loop
        # C_c accumulates rank-d_c partial sums across the 5th loop.
        C_c = np.zeros((m, n_b), dtype=np.float64)
        # Var#2/3/5 need a completed-distance buffer for their scope.
        slab = (
            np.zeros((m, n_b), dtype=np.float64)
            if var in (Variant.VAR2, Variant.VAR3, Variant.VAR5)
            else None
        )
        r_block = r_idx[j_c : j_c + n_b]
        for p_c, d_b in iter_blocks(d, blk.d_c):  # 5th loop
            last_depth = p_c + d_b >= d
            with _trace.span("pack", which="R", rows=n_b, depth=d_b):
                Rc = pack_micropanels(X[r_block, p_c : p_c + d_b], blk.n_r)
            R2c = (
                table_norms[r_block]
                if (last_depth and (norm.is_l2 or norm.is_cosine))
                else None
            )
            for i_c, m_b in iter_blocks(m, blk.m_c):  # 4th loop
                q_block = q_idx[i_c : i_c + m_b]
                with _trace.span("pack", which="Q", rows=m_b, depth=d_b):
                    Qc = pack_micropanels(X[q_block, p_c : p_c + d_b], blk.m_r)
                Q2c = (
                    table_norms[q_block]
                    if (last_depth and (norm.is_l2 or norm.is_cosine))
                    else None
                )
                _exact_macro_kernel(
                    C_c,
                    Qc,
                    Rc,
                    Q2c,
                    R2c,
                    heaps,
                    C_full,
                    slab,
                    i_c,
                    j_c,
                    m_b,
                    n_b,
                    blk,
                    norm,
                    r_block,
                    last_depth=last_depth,
                    variant=var,
                )
                if var is Variant.VAR3 and last_depth:
                    # selection after the 3rd loop: the m_b x n_b block of
                    # completed distances for this 4th-loop iteration
                    assert slab is not None
                    for i in range(m_b):
                        heaps[i_c + i].update_many(
                            slab[i_c + i], r_block
                        )
        if var is Variant.VAR5:
            # selection after the 5th loop: the full m x n_b slab
            assert slab is not None
            with _trace.span("heap", stage="var5_slab", cols=n_b):
                for i in range(m):
                    heaps[i].update_many(slab[i], r_block)

    if var is Variant.VAR6:
        assert C_full is not None
        with _trace.span("heap", stage="var6_full"):
            for i in range(m):
                heaps[i].update_many(C_full[i], r_idx)

    dist = np.empty((m, k), dtype=np.float64)
    idx = np.empty((m, k), dtype=np.intp)
    with _trace.span("heap", stage="extract"):
        for i, heap in enumerate(heaps):
            dist[i], idx[i] = heap.sorted_pairs()
    return KnnResult(dist, idx)


def _exact_macro_kernel(
    C_c: np.ndarray,
    Qc: np.ndarray,
    Rc: np.ndarray,
    Q2c: np.ndarray | None,
    R2c: np.ndarray | None,
    heaps: list,
    C_full: np.ndarray | None,
    slab: np.ndarray | None,
    i_c: int,
    j_c: int,
    m_b: int,
    n_b: int,
    blk: BlockingParams,
    norm: Norm,
    r_block: np.ndarray,
    *,
    last_depth: bool,
    variant: Variant,
) -> None:
    """3rd/2nd loops plus the micro-kernel (1st loop) and its variant tail."""
    m_r, n_r = blk.m_r, blk.n_r
    for jp in range(Rc.shape[0]):  # 3rd loop
        j0 = jp * n_r
        cols = min(n_r, n_b - j0)
        for ip in range(Qc.shape[0]):  # 2nd loop
            i0 = ip * m_r
            rows = min(m_r, m_b - i0)
            tile = microkernel.init_tile(m_r, n_r, norm)
            tile[:rows, :cols] = C_c[
                i_c + i0 : i_c + i0 + rows, j0 : j0 + cols
            ]
            microkernel.rank_update(tile, Qc[ip], Rc[jp], norm)
            if not last_depth:
                C_c[i_c + i0 : i_c + i0 + rows, j0 : j0 + cols] = tile[
                    :rows, :cols
                ]
                continue
            if norm.is_l2 or norm.is_cosine:
                q2 = np.zeros(m_r)
                r2 = np.zeros(n_r)
                q2[:rows] = Q2c[i0 : i0 + rows]
                r2[:cols] = R2c[j0 : j0 + cols]
                dist_tile = microkernel.finalize_tile(tile, q2, r2, norm)
            else:
                dist_tile = microkernel.finalize_tile(tile, None, None, norm)
            if variant is Variant.VAR1:
                microkernel.fused_select(
                    dist_tile,
                    heaps,
                    i_c + i0,
                    r_block[j0 : j0 + cols],
                    live_rows=rows,
                    live_cols=cols,
                )
            elif variant is Variant.VAR6:
                assert C_full is not None
                C_full[
                    i_c + i0 : i_c + i0 + rows, j_c + j0 : j_c + j0 + cols
                ] = dist_tile[:rows, :cols]
            else:  # Var#2/3/5 buffer completed distances in the slab
                assert slab is not None
                slab[
                    i_c + i0 : i_c + i0 + rows, j0 : j0 + cols
                ] = dist_tile[:rows, :cols]
        if variant is Variant.VAR2 and last_depth:
            # selection after the 2nd loop: the m_b x n_r strip just
            # completed for this 3rd-loop iteration
            assert slab is not None
            for i in range(m_b):
                heaps[i_c + i].update_many(
                    slab[i_c + i, j0 : j0 + cols], r_block[j0 : j0 + cols]
                )
