"""Figure 6 — the 12-panel 10-core efficiency grid.

Paper: GFLOPS vs d (log scale, 4..1028) for every combination of
m = n ∈ {2048, 4096, 8192} and k ∈ {16, 128, 512, 2048}; Var#1 used for
k ≤ 512, Var#6 for 2048. Trends: efficiency grows with m, n, d and
degrades with k; 80% of peak for k ≤ 128 at d ≥ 512; GSKNN up to ~5x
the GEMM kernel for d ∈ [10, 100], k ≤ 128.

Reproduced as (a) the exact model grid at paper sizes and (b) a
measured grid on this host at scaled sizes (m = n ∈ {512, 1024, 2048},
k ∈ {16, 128, 512}) reporting achieved GFLOPS and the speedup over the
GEMM-based kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel
from repro.perf.gflops import gflops

from .conftest import run_report, SCALE, best_time, uniform_problem

MODEL_SIZES = [2048, 4096, 8192]
MODEL_KS = [16, 128, 512, 2048]
MODEL_DIMS = [4, 16, 64, 256, 1024]

MEASURED_SIZES = [1024 * SCALE, 2048 * SCALE, 4096 * SCALE]
MEASURED_KS = [16, 128, 512]
MEASURED_DIMS = [4, 16, 64, 256]


def test_fig6_model_grid(benchmark, report):
    def _run():
        model = PerformanceModel(IVY_BRIDGE.scaled(10, 3.10e9))
        rep = report(
            "fig6_model_grid",
            "Figure 6, model grid (p=10; GFLOPS, peak 248)\n"
            f"{'panel':>16} " + "".join(f"{f'd={d}':>8}" for d in MODEL_DIMS),
        )
        for size in MODEL_SIZES:
            for k in MODEL_KS:
                kernel = "var1" if k <= 512 else "var6"
                series = [
                    model.predict(kernel, size, size, d, min(k, size)).gflops
                    for d in MODEL_DIMS
                ]
                rep.row(
                    f"{f'm=n={size} k={k}':>16} "
                    + "".join(f"{g:>8.1f}" for g in series)
                )


    run_report(benchmark, _run)


def test_fig6_measured_grid(benchmark, report):
    def _run():
        rep = report(
            "fig6_measured_grid",
            "Figure 6, measured on this host (GSKNN GFLOPS / speedup vs GEMM)\n"
            f"{'panel':>16} " + "".join(f"{f'd={d}':>14}" for d in MEASURED_DIMS),
        )
        for size in MEASURED_SIZES:
            for k in MEASURED_KS:
                if k >= size:
                    continue
                cells = []
                for d in MEASURED_DIMS:
                    X, q, r = uniform_problem(size, size, d, seed=0)
                    t_ours = best_time(lambda: gsknn(X, q, r, k), repeats=2)
                    t_ref = best_time(lambda: ref_knn(X, q, r, k), repeats=2)
                    cells.append(
                        f"{gflops(size, size, d, t_ours):>6.2f}/{t_ref / t_ours:>5.2f}x"
                    )
                rep.row(f"{f'm=n={size} k={k}':>16} " + " ".join(cells))


    run_report(benchmark, _run)


class TestFigure6Trends:
    @pytest.fixture(scope="class")
    def model(self):
        return PerformanceModel(IVY_BRIDGE.scaled(10, 3.10e9))

    def test_efficiency_grows_with_problem_size(self, model):
        g = [
            model.predict("var1", s, s, 64, 16).gflops for s in MODEL_SIZES
        ]
        assert g == sorted(g)

    def test_efficiency_degrades_with_k(self, model):
        g = [
            model.predict("var1", 8192, 8192, 64, k).gflops
            for k in (16, 128, 512)
        ]
        assert g == sorted(g, reverse=True)

    def test_80pct_peak_claim(self, model):
        """§4: for m large enough, 80% of peak at high d for k <= 128."""
        for k in (16, 128):
            assert model.predict("var1", 8192, 8192, 512, k).gflops > 0.8 * 248

    def test_65pct_peak_at_k2048(self, model):
        assert model.predict("var6", 8192, 8192, 1024, 2048).gflops > 0.65 * 248

    def test_measured_speedup_positive_low_d_small_k(self):
        size = MEASURED_SIZES[-1]
        X, q, r = uniform_problem(size, size, 16, seed=5)
        t_ours = best_time(lambda: gsknn(X, q, r, 16), repeats=2)
        t_ref = best_time(lambda: ref_knn(X, q, r, 16), repeats=2)
        assert t_ref / t_ours > 1.0
