"""Recall-aware query planning: exact vs tree vs LSH vs graph.

The planner answers one question per workload: *given (n, d, k) and a
recall target, which solver is cheapest among those calibrated to meet
the target?* Exact gsknn is always feasible (recall 1.0) and is the
universal fallback; the approximate methods are only ever chosen off
**measured** operating points — the autotuner's philosophy (never trust
a model where you can afford a measurement) applied to the
recall/latency trade:

* :func:`calibrate_planner` measures, on a representative table, exact
  per-query cost through a cached :class:`~repro.core.plan.GsknnPlan`
  (best-of-repeats, the tune ``_time`` idiom), NN-descent build cost
  and build recall, beam-search recall/latency at several ``ef``
  values, and the iterated tree/LSH all-kNN solvers' recall/cost.
* The measured exact cost is anchored to
  :class:`~repro.model.perf_model.PerformanceModel` as a host ratio, so
  exact cost extrapolates to other (m, n) through the model rather than
  a bare linear scale; approximate costs extrapolate by their
  asymptotics (builds and tree/LSH sweeps ~linear in n, beam search
  ~log n).
* Calibration persists next to ``tuning.json`` keyed by host
  fingerprint (:mod:`repro.approx.store`).

**Fallback ladder** (the recall contract): no recall target, or a
target of ~1.0, means exact. A set target with no usable calibration —
missing file, unknown host fingerprint, or a (d, k) regime the
calibration doesn't cover — also means exact, silently, counted on the
``plan.fallback`` metric: the planner never errors and never trades
recall away without a measurement saying it can.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from ..errors import ValidationError
from ..model.perf_model import PerformanceModel
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from .store import load_calibration, save_calibration

__all__ = [
    "OperatingPoint",
    "PlannerCalibration",
    "PlanDecision",
    "QueryPlanner",
    "calibrate_planner",
]

#: targets at/above this are served exactly — approximate tiers cannot
#: contract recall this close to 1.
EXACT_TARGET = 0.999

_WORKLOADS = ("query", "allknn")


@dataclass(frozen=True)
class OperatingPoint:
    """One measured (method, knob) -> (recall, cost) sample.

    ``workload`` says what the point can plan: ``"query"`` points carry
    per-query ``query_seconds`` (beam search at some ``ef``);
    ``"allknn"`` points carry a whole-table ``solve_seconds`` (an
    NN-descent build, or an iterated tree/LSH sweep).
    """

    method: str
    workload: str
    params: dict[str, Any]
    recall: float
    query_seconds: float = 0.0
    solve_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class PlannerCalibration:
    """Everything one calibration run measured, at one (n, d, k) scale."""

    n: int
    d: int
    k: int
    m_queries: int
    exact_query_seconds: float
    model_ratio: float
    graph_build_seconds: float
    points: list[OperatingPoint] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["points"] = [p.to_dict() for p in self.points]
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "PlannerCalibration":
        points = [OperatingPoint(**p) for p in doc.get("points", [])]
        return cls(
            n=int(doc["n"]),
            d=int(doc["d"]),
            k=int(doc["k"]),
            m_queries=int(doc["m_queries"]),
            exact_query_seconds=float(doc["exact_query_seconds"]),
            model_ratio=float(doc["model_ratio"]),
            graph_build_seconds=float(doc["graph_build_seconds"]),
            points=points,
        )


@dataclass(frozen=True)
class PlanDecision:
    """What the planner chose, and why — attached to reports and spans."""

    method: str  # "exact" | "graph" | "rkdtree" | "lsh"
    workload: str
    reason: str
    params: dict[str, Any] = field(default_factory=dict)
    expected_recall: float | None = None
    expected_seconds: float | None = None
    fallback: bool = False


def _exact_decision(
    workload: str,
    reason: str,
    *,
    fallback: bool = False,
    expected_seconds: float | None = None,
) -> PlanDecision:
    registry = _get_registry()
    if registry.enabled:
        registry.inc("plan.decisions", labels={"method": "exact"})
        if fallback:
            registry.inc("plan.fallback", labels={"reason": reason})
    return PlanDecision(
        method="exact",
        workload=workload,
        reason=reason,
        expected_recall=1.0,
        expected_seconds=expected_seconds,
        fallback=fallback,
    )


class QueryPlanner:
    """Picks a solver per (n, d, k, recall_target) from calibrated curves.

    By default the calibration is loaded from the persisted per-host
    store (``planner.json``); pass ``calibration=`` explicitly (or
    ``None`` to force the uncalibrated fallback behaviour) to override.
    """

    _UNSET = object()

    def __init__(
        self,
        calibration: PlannerCalibration | None | object = _UNSET,
        *,
        cache_path=None,
        model: PerformanceModel | None = None,
    ) -> None:
        if calibration is QueryPlanner._UNSET:
            calibration = load_calibration(cache_path)
        self.calibration: PlannerCalibration | None = calibration
        self.model = model if model is not None else PerformanceModel()

    # ---- cost extrapolation -------------------------------------------------

    def _exact_seconds(self, m: int, n: int, d: int, k: int) -> float | None:
        estimate = self.model.estimate_kernel_runtime(m, n, d, k)
        cal = self.calibration
        if cal is None:
            return estimate
        return estimate * cal.model_ratio

    def _approx_seconds(
        self, point: OperatingPoint, m: int, n: int, include_build: bool
    ) -> float:
        cal = self.calibration
        scale_n = n / max(cal.n, 1)
        if point.workload == "allknn":
            # builds and grouped sweeps are ~linear in n
            return point.solve_seconds * scale_n
        # beam search: hop count grows ~log n; per-hop work is n-free
        log_scale = np.log2(max(n, 2)) / np.log2(max(cal.n, 2))
        seconds = point.query_seconds * log_scale * m
        if include_build:
            seconds += cal.graph_build_seconds * scale_n
        return seconds

    # ---- the ladder ---------------------------------------------------------

    def plan(
        self,
        n: int,
        d: int,
        k: int,
        recall_target: float | None,
        *,
        workload: str = "query",
        m_queries: int | None = None,
        include_build: bool = False,
    ) -> PlanDecision:
        """Choose a method; never raises past input validation.

        ``workload="allknn"`` plans a whole-table solve (all n points
        are queries; an NN-descent build is itself the answer);
        ``workload="query"`` plans ``m_queries`` online lookups against
        a standing index (``include_build`` charges the build too, for
        one-shot uses).
        """
        if workload not in _WORKLOADS:
            raise ValidationError(
                f"workload must be one of {_WORKLOADS}, got {workload!r}"
            )
        if n < 1 or d < 1 or k < 1:
            raise ValidationError(
                f"n, d, k must be positive, got ({n}, {d}, {k})"
            )
        if recall_target is not None and not 0.0 < recall_target <= 1.0:
            raise ValidationError(
                f"recall_target must be in (0, 1], got {recall_target}"
            )
        m = m_queries if m_queries is not None else (n if workload == "allknn" else 1)

        if recall_target is None:
            return _exact_decision(
                workload,
                "no recall target: exact by default",
                expected_seconds=self._exact_seconds(m, n, d, k),
            )
        if recall_target >= EXACT_TARGET:
            return _exact_decision(
                workload,
                f"recall target {recall_target} is effectively exact",
                expected_seconds=self._exact_seconds(m, n, d, k),
            )
        cal = self.calibration
        if cal is None:
            return _exact_decision(
                workload, "no_calibration", fallback=True
            )
        # regime guard: don't extrapolate a calibration across a very
        # different dimensionality or list width
        if not (0.5 <= d / cal.d <= 2.0) or k > 2 * cal.k:
            return _exact_decision(
                workload, "regime_mismatch", fallback=True
            )

        exact_seconds = self._exact_seconds(m, n, d, k)
        candidates: list[PlanDecision] = []
        for point in cal.points:
            if point.workload != workload:
                continue
            if point.recall < recall_target:
                continue
            candidates.append(
                PlanDecision(
                    method=point.method,
                    workload=workload,
                    reason=(
                        f"calibrated {point.method} point meets target "
                        f"{recall_target} at lower cost than exact"
                    ),
                    params=dict(point.params),
                    expected_recall=point.recall,
                    expected_seconds=self._approx_seconds(
                        point, m, n, include_build
                    ),
                )
            )
        if not candidates:
            return _exact_decision(
                workload,
                f"no calibrated point reaches recall {recall_target}",
                expected_seconds=exact_seconds,
            )
        best = min(candidates, key=lambda c: c.expected_seconds)
        if exact_seconds is not None and exact_seconds <= best.expected_seconds:
            return _exact_decision(
                workload,
                "exact is cheapest at this size",
                expected_seconds=exact_seconds,
            )
        registry = _get_registry()
        if registry.enabled:
            registry.inc("plan.decisions", labels={"method": best.method})
        return best


def calibrate_planner(
    X: np.ndarray,
    k: int,
    *,
    seed: int = 0,
    beam_grid: tuple[tuple[int, int, int | None], ...] = (
        (16, 3, 3),
        (24, 3, 3),
        (32, 4, 4),
        (64, 4, None),
    ),
    tree_iterations: tuple[int, ...] = (2, 4),
    lsh_tables: tuple[int, ...] = (4, 8),
    sample_queries: int = 128,
    repeats: int = 2,
    graph_kwargs: dict[str, Any] | None = None,
    save: bool = False,
    cache_path=None,
) -> PlannerCalibration:
    """Measure recall/latency operating points on a representative table.

    ``X`` should be drawn at a scale the host can afford to solve
    exactly (the measured points extrapolate; see
    :meth:`QueryPlanner.plan`). With ``save=True`` the calibration is
    persisted for this host so future :class:`QueryPlanner` instances
    pick it up automatically.
    """
    from ..core.neighbors import KnnResult
    from ..core.plan import GsknnPlan
    from ..trees.allknn import all_nearest_neighbors
    from ..trees.evaluation import recall_at
    from ..validation import as_coordinate_table, check_finite, check_k
    from .nndescent import build_graph_index
    from .search import beam_search

    def _rows_of(result: KnnResult, rows: np.ndarray) -> KnnResult:
        return KnnResult(result.distances[rows], result.indices[rows])

    def _truncated(result: KnnResult, width: int) -> KnnResult:
        return KnnResult(result.distances[:, :width], result.indices[:, :width])

    X = as_coordinate_table(X)
    check_finite(X)
    n, d = X.shape
    k = check_k(k, n)
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed)
    m = min(sample_queries, n)
    q_idx = np.sort(rng.choice(n, size=m, replace=False)).astype(np.intp)

    def _best_of(fn):
        best, out = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best, out = elapsed, result
        return best, out

    registry = _get_registry()
    with _trace.span("approx.calibrate", n=n, d=d, k=k, m=m):
        # exact cost + truth, through the amortized plan (the honest
        # serving comparator: panels cached, workspaces warm)
        plan = GsknnPlan(X, np.arange(n, dtype=np.intp))
        exact_seconds, truth = _best_of(lambda: plan.execute(q_idx, k))
        model = PerformanceModel()
        predicted = model.estimate_kernel_runtime(m, n, d, k)
        model_ratio = exact_seconds / predicted if predicted > 0 else 1.0

        points: list[OperatingPoint] = []

        # graph: one build, then the beam-ef sweep
        t0 = time.perf_counter()
        index = build_graph_index(X, seed=seed, **(graph_kwargs or {}))
        graph_build_seconds = time.perf_counter() - t0
        build_k = min(k, index.k_build)
        build_lists = index.as_result(build_k)
        build_recall = recall_at(
            _rows_of(build_lists, q_idx), _truncated(truth, build_k), build_k
        )
        points.append(
            OperatingPoint(
                method="graph",
                workload="allknn",
                params={"stage": "build", "k_build": index.k_build},
                recall=build_recall,
                solve_seconds=graph_build_seconds,
            )
        )
        Qs = X[q_idx]
        for ef, expand, max_hops in beam_grid:
            ef = max(int(ef), k)
            seconds, result = _best_of(
                lambda ef=ef, ex=expand, mh=max_hops: beam_search(
                    index, Qs, k, ef=ef, expand=ex, max_hops=mh
                )
            )
            points.append(
                OperatingPoint(
                    method="graph",
                    workload="query",
                    params={
                        "ef": ef,
                        "expand": int(expand),
                        "max_hops": (
                            None if max_hops is None else int(max_hops)
                        ),
                    },
                    recall=recall_at(result, truth, k),
                    query_seconds=seconds / m,
                )
            )

        # iterated tree / LSH sweeps (all-kNN workload)
        for method, knobs in (
            ("rkdtree", tree_iterations),
            ("lsh", lsh_tables),
        ):
            for iters in knobs:
                t0 = time.perf_counter()
                report = all_nearest_neighbors(
                    X, k, method=method, iterations=int(iters), seed=seed
                )
                seconds = time.perf_counter() - t0
                sample = _rows_of(report.result, q_idx)
                points.append(
                    OperatingPoint(
                        method=method,
                        workload="allknn",
                        params={"iterations": int(iters)},
                        recall=recall_at(sample, truth, k),
                        solve_seconds=seconds,
                    )
                )

        calibration = PlannerCalibration(
            n=n,
            d=d,
            k=k,
            m_queries=m,
            exact_query_seconds=exact_seconds / m,
            model_ratio=model_ratio,
            graph_build_seconds=graph_build_seconds,
            points=points,
        )
        if registry.enabled:
            registry.inc("approx.calibrations")
            registry.observe("approx.calibrate.points", len(points))
    if save:
        save_calibration(calibration, cache_path=cache_path)
    return calibration
