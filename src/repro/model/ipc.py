"""Instruction-count and IPC estimation (paper §4, final remark).

GFLOPS under-represents selection-heavy configurations because heap
work executes no floating-point operations. The paper: "IPC
(Instructions per cycle) that includes the instruction count in the
neighbor selections can be converted from Table 4 by summing up all
floating point, non-floating point and memory operations together to
reveal the performance." This module performs that conversion:

* :func:`instruction_counts` — the kernel's instruction classes:
  flop-instructions (SIMD-packed, ``simd_width`` flops per
  instruction), selection instructions (12 per heap adjustment plus a
  filter compare per candidate, §2.6), and memory-move instructions
  (one per cache line of modeled slow traffic);
* :func:`predict_ipc` — total instructions over predicted cycles,
  where cycles come from the Table 4 time prediction at the machine's
  clock.

IPC is flat where GFLOPS collapses with k — the point the paper makes
about low-d / large-k configurations being busy, just not with flops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING
from ..errors import ValidationError
from ..machine.params import IVY_BRIDGE, MachineParams
from .costs import memory_terms

__all__ = ["InstructionCounts", "instruction_counts", "predict_ipc"]

_LINE_DOUBLES = 8  # 64-byte line / 8-byte double


@dataclass(frozen=True)
class InstructionCounts:
    """Instruction-class totals for one kernel execution."""

    flop_instructions: float
    selection_instructions: float
    memory_instructions: float

    @property
    def total(self) -> float:
        return (
            self.flop_instructions
            + self.selection_instructions
            + self.memory_instructions
        )


def instruction_counts(
    m: int,
    n: int,
    d: int,
    k: int,
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    kernel: str = "var1",
    simd_width: int = 4,
) -> InstructionCounts:
    """Estimate the kernel's instruction mix from the Table 4 terms."""
    if simd_width < 1:
        raise ValidationError(f"simd_width must be >= 1, got {simd_width}")
    terms = memory_terms(m, n, d, k, machine, blocking, kernel)
    # flops -> packed instructions (FMA counts mul+add as 2 flops/lane)
    flops = (2 * d + 3) * m * n
    flop_instr = flops / (2 * simd_width)
    # selection: 12 instructions per expected heap adjustment plus the
    # root-filter compare every candidate pays
    log_k = math.log2(k) if k > 1 else 1.0
    selection_instr = machine.epsilon * (
        12.0 * m * k * log_k + m * n
    )
    # memory: one move instruction per line of modeled slow traffic
    slow_doubles = terms.t_m / machine.tau_b  # time back to volume
    memory_instr = slow_doubles / _LINE_DOUBLES
    return InstructionCounts(flop_instr, selection_instr, memory_instr)


def predict_ipc(
    m: int,
    n: int,
    d: int,
    k: int,
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    kernel: str = "var1",
    simd_width: int = 4,
) -> float:
    """Predicted instructions-per-cycle over the Table 4 runtime."""
    counts = instruction_counts(
        m, n, d, k, machine, blocking, kernel, simd_width
    )
    terms = memory_terms(m, n, d, k, machine, blocking, kernel)
    cycles = terms.total * machine.clock_hz * machine.cores
    if cycles <= 0:
        raise ValidationError("predicted cycle count must be positive")
    return counts.total / cycles
