"""NN-descent graph construction: quality, determinism, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import GraphIndex, build_graph_index
from repro.core.neighbors import recall
from repro.errors import ValidationError


class TestBuildQuality:
    def test_build_recall(self, cloud, cloud_truth, graph_index):
        assert recall(graph_index.as_result(16), cloud_truth) >= 0.95

    def test_lists_are_sorted_and_self_inclusive(self, graph_index):
        d = graph_index.distances
        assert (np.diff(d, axis=1) >= 0).all()
        # nearest neighbor of every point is itself at distance 0
        n = graph_index.X.shape[0]
        np.testing.assert_array_equal(
            graph_index.neighbors[:, 0], np.arange(n)
        )
        # norm-trick arithmetic leaves clamped float residue on x vs x
        assert (d[:, 0] <= 1e-9).all()

    def test_report_attached(self, graph_index):
        rep = graph_index.build_report
        assert rep is not None
        assert rep.rounds >= 0
        assert rep.total_seconds > 0
        assert rep.candidate_evals > 0

    def test_truth_records_recall_curve(self, cloud, cloud_truth):
        index = build_graph_index(
            cloud, k_build=16, seed=0, rounds=2, truth=cloud_truth
        )
        curve = index.build_report.recall_curve
        assert len(curve) >= 1
        assert all(0.0 <= r <= 1.0 for r in curve)
        # refinement never loses ground: the curve is non-decreasing
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_adjacency_augmented_wider_than_lists(self, graph_index):
        """Reverse-edge augmentation: traversal adjacency is a superset
        of (and wider than) the kNN answer lists."""
        assert graph_index.adjacency.shape[1] > graph_index.k_build
        # forward edges all present
        n, kb = graph_index.neighbors.shape
        for row in (0, n // 2, n - 1):
            fwd = set(graph_index.neighbors[row]) - {row}
            adj = set(graph_index.adjacency[row])
            assert fwd <= adj

    def test_entry_points_are_valid_rows(self, graph_index):
        n = graph_index.X.shape[0]
        ep = graph_index.entry_points
        assert ep.size > 0
        assert ((ep >= 0) & (ep < n)).all()
        assert np.unique(ep).size == ep.size


class TestDeterminism:
    def test_same_seed_bit_identical(self, cloud):
        a = build_graph_index(cloud, k_build=12, seed=3, rounds=3)
        b = build_graph_index(cloud, k_build=12, seed=3, rounds=3)
        np.testing.assert_array_equal(a.neighbors, b.neighbors)
        np.testing.assert_array_equal(a.distances, b.distances)
        np.testing.assert_array_equal(a.entry_points, b.entry_points)
        np.testing.assert_array_equal(a.adjacency, b.adjacency)

    def test_different_seed_differs(self, cloud):
        a = build_graph_index(cloud, k_build=12, seed=3, rounds=1)
        b = build_graph_index(cloud, k_build=12, seed=4, rounds=1)
        assert not np.array_equal(a.entry_points, b.entry_points) or not (
            np.array_equal(a.neighbors, b.neighbors)
        )


class TestPersistence:
    def test_save_load_roundtrip(self, graph_index, tmp_path):
        path = graph_index.save(tmp_path / "idx.npz")
        loaded = GraphIndex.load(path)
        np.testing.assert_array_equal(loaded.X, graph_index.X)
        np.testing.assert_array_equal(loaded.neighbors, graph_index.neighbors)
        np.testing.assert_array_equal(loaded.distances, graph_index.distances)
        np.testing.assert_array_equal(
            loaded.entry_points, graph_index.entry_points
        )
        np.testing.assert_array_equal(
            loaded.adjacency, graph_index.adjacency
        )

    def test_loaded_index_searches_identically(
        self, graph_index, tmp_path, cloud
    ):
        from repro.approx import beam_search

        loaded = GraphIndex.load(graph_index.save(tmp_path / "idx.npz"))
        Q = cloud[:32]
        a = beam_search(graph_index, Q, 8, ef=32)
        b = beam_search(loaded, Q, 8, ef=32)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestValidation:
    def test_as_result_bounds(self, graph_index):
        with pytest.raises(ValidationError):
            graph_index.as_result(graph_index.k_build + 1)
        with pytest.raises(ValidationError):
            graph_index.as_result(0)

    def test_as_result_truncates(self, graph_index):
        res = graph_index.as_result(4)
        assert res.k == 4
        np.testing.assert_array_equal(
            res.indices, graph_index.neighbors[:, :4]
        )

    def test_k_build_too_large(self, rng):
        with pytest.raises(ValidationError):
            build_graph_index(rng.random((10, 3)), k_build=10)

    def test_bad_rounds(self, rng):
        with pytest.raises(ValidationError):
            build_graph_index(rng.random((50, 3)), k_build=4, rounds=-1)
