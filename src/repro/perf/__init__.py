"""Timers, counters, and efficiency helpers.

Provides the pieces the benchmark harnesses share: phase timers for the
Table 5 breakdown (``T_coll + T_gemm + T_sq2d + T_heap``), flop counting
for the kNN kernel (the paper's ``(2d + 3) m n`` numerator), and GFLOPS /
efficiency conversion.
"""

from .counters import KernelCounters
from .gflops import knn_flops, gflops, efficiency
from .memcheck import MemoryReport, memory_checker
from .roofline import (
    arithmetic_intensity,
    classify,
    ridge_intensity,
    roofline_bound,
)
from .timer import PhaseBreakdown, PhaseTimer

__all__ = [
    "PhaseTimer",
    "PhaseBreakdown",
    "KernelCounters",
    "MemoryReport",
    "memory_checker",
    "knn_flops",
    "gflops",
    "efficiency",
    "arithmetic_intensity",
    "roofline_bound",
    "ridge_intensity",
    "classify",
]
