"""Unit tests for blocking-parameter derivation and variant switching."""

from __future__ import annotations

import pytest

from repro.core.tuning import (
    dynamic_m_c,
    select_blocking,
    select_variant_heuristic,
    select_variant_model,
)
from repro.core.variants import Variant
from repro.config import IVY_BRIDGE_BLOCKING
from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE, TINY_MACHINE
from repro.model.perf_model import PerformanceModel


class TestSelectBlocking:
    def test_reproduces_paper_neighbourhood_on_ivy_bridge(self):
        """§2.4's recipe applied to the Ivy Bridge geometry must land on
        the published parameters (d_c exactly; m_c/n_c same magnitude)."""
        blk = select_blocking(IVY_BRIDGE)
        assert blk.m_r == 8 and blk.n_r == 4
        assert blk.d_c == IVY_BRIDGE_BLOCKING.d_c == 256
        assert 64 <= blk.m_c <= 128      # paper: 96-104 depending on reserve
        assert 2048 <= blk.n_c <= 16384  # paper: 4096

    def test_l1_budget_respected(self):
        blk = select_blocking(IVY_BRIDGE)
        micro_bytes = (blk.m_r + blk.n_r) * blk.d_c * 8
        assert micro_bytes <= 0.75 * IVY_BRIDGE.cache("L1").size_bytes + 8 * 8

    def test_l2_budget_respected(self):
        blk = select_blocking(IVY_BRIDGE)
        assert blk.m_c * blk.d_c * 8 <= 0.75 * IVY_BRIDGE.cache("L2").size_bytes

    def test_small_machine(self):
        blk = select_blocking(TINY_MACHINE, m_r=2, n_r=2)
        assert blk.d_c >= 8
        assert blk.m_c >= blk.m_r

    def test_requires_three_levels(self):
        from dataclasses import replace

        two_level = replace(IVY_BRIDGE, caches=IVY_BRIDGE.caches[:2])
        with pytest.raises(ValidationError):
            select_blocking(two_level)


class TestVariantSwitching:
    def test_heuristic_matches_paper_rule(self):
        assert select_variant_heuristic(16, 64) is Variant.VAR1
        assert select_variant_heuristic(512, 64) is Variant.VAR1
        assert select_variant_heuristic(513, 64) is Variant.VAR6
        assert select_variant_heuristic(2048, 64) is Variant.VAR6

    def test_heuristic_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            select_variant_heuristic(0, 64)

    def test_model_selection_monotone_in_k(self):
        """Once the model prefers Var#6 at some k it must keep preferring
        it for larger k (the threshold is a single crossover)."""
        model = PerformanceModel()
        m = n = 8192
        picks = [
            select_variant_model(m, n, 64, k, model)
            for k in (4, 16, 64, 256, 1024, 4096)
        ]
        switched = False
        for pick in picks:
            if pick is Variant.VAR6:
                switched = True
            elif switched:
                pytest.fail("variant switched back to VAR1 at larger k")

    def test_model_prefers_var1_for_tiny_k(self):
        model = PerformanceModel()
        assert select_variant_model(8192, 8192, 64, 1, model) is Variant.VAR1


class TestDynamicMc:
    def test_balances_block_count(self):
        m_c = dynamic_m_c(1000, 10, IVY_BRIDGE_BLOCKING)
        blocks = -(-1000 // m_c)
        assert blocks % 10 == 0 or blocks >= 10

    def test_never_exceeds_base(self):
        assert dynamic_m_c(10**6, 2, IVY_BRIDGE_BLOCKING) <= IVY_BRIDGE_BLOCKING.m_c

    def test_multiple_of_m_r(self):
        m_c = dynamic_m_c(777, 7, IVY_BRIDGE_BLOCKING)
        assert m_c % IVY_BRIDGE_BLOCKING.m_r == 0

    def test_small_m(self):
        m_c = dynamic_m_c(5, 10, IVY_BRIDGE_BLOCKING)
        assert m_c >= IVY_BRIDGE_BLOCKING.m_r

    def test_validation(self):
        with pytest.raises(ValidationError):
            dynamic_m_c(0, 2, IVY_BRIDGE_BLOCKING)
        with pytest.raises(ValidationError):
            dynamic_m_c(10, 0, IVY_BRIDGE_BLOCKING)
