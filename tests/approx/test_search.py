"""Beam search: recall, determinism, stats, parameter semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import SearchStats, beam_search
from repro.core.neighbors import KnnResult, recall
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def queries(cloud):
    # out-of-sample-ish: perturbed table rows
    rng = np.random.default_rng(7)
    return cloud[:64] + 0.01 * rng.standard_normal((64, cloud.shape[1]))


class TestRecall:
    def test_in_sample_recall(self, graph_index, cloud, cloud_truth):
        Q = cloud[:128]
        result = beam_search(graph_index, Q, 10, ef=32)
        truth = KnnResult(
            cloud_truth.distances[:128, :10], cloud_truth.indices[:128, :10]
        )
        assert recall(result, truth) >= 0.9

    def test_self_is_found(self, graph_index, cloud):
        """A query identical to a table row must find that row first."""
        result = beam_search(graph_index, cloud[:16], 5, ef=32)
        np.testing.assert_array_equal(result.indices[:, 0], np.arange(16))
        assert (result.distances[:, 0] == 0).all()

    def test_wider_ef_never_worse(self, graph_index, cloud, cloud_truth):
        Q = cloud[:128]
        truth = KnnResult(
            cloud_truth.distances[:128, :10], cloud_truth.indices[:128, :10]
        )
        narrow = recall(beam_search(graph_index, Q, 10, ef=16), truth)
        wide = recall(beam_search(graph_index, Q, 10, ef=64), truth)
        assert wide >= narrow - 1e-9

    def test_rows_sorted_ascending(self, graph_index, queries):
        result = beam_search(graph_index, queries, 8)
        d = result.distances
        assert (np.diff(d, axis=1) >= -1e-12).all()

    def test_no_duplicate_ids_per_row(self, graph_index, queries):
        result = beam_search(graph_index, queries, 8)
        for row in result.indices:
            filled = row[row >= 0]
            assert np.unique(filled).size == filled.size


class TestDeterminism:
    def test_bit_identical_across_calls(self, graph_index, queries):
        a = beam_search(graph_index, queries, 8, ef=24)
        b = beam_search(graph_index, queries, 8, ef=24)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestRerank:
    def test_rerank_distances_are_exact_float64(
        self, graph_index, cloud, queries
    ):
        result = beam_search(graph_index, queries, 6, rerank=True)
        assert result.distances.dtype == np.float64
        for i in (0, 17, 63):
            for j in range(6):
                c = result.indices[i, j]
                exact = float(((queries[i] - cloud[c]) ** 2).sum())
                assert result.distances[i, j] == pytest.approx(
                    exact, abs=1e-12
                )

    def test_no_rerank_same_ids_float_distances(self, graph_index, queries):
        """rerank=False keeps the float32 hop metric but must return the
        same well-formed shape (sorted, deduped, k wide)."""
        result = beam_search(graph_index, queries, 6, rerank=False)
        assert result.indices.shape == (queries.shape[0], 6)
        assert (np.diff(result.distances, axis=1) >= -1e-6).all()


class TestStats:
    def test_stats_accounting(self, graph_index, queries):
        result, stats = beam_search(
            graph_index, queries, 8, ef=24, return_stats=True
        )
        assert isinstance(stats, SearchStats)
        assert stats.queries == queries.shape[0]
        assert stats.hops >= 1
        assert stats.entry_evals > 0
        assert stats.candidate_evals > 0
        assert stats.rerank_evals > 0
        assert 0.0 < stats.rerank_fraction < 1.0
        assert stats.total_evals == (
            stats.entry_evals + stats.candidate_evals + stats.rerank_evals
        )

    def test_metrics_emitted(self, graph_index, queries, metrics):
        beam_search(graph_index, queries, 8)
        snap = metrics.snapshot()
        assert snap["counters"].get("approx.search.queries") == len(queries)
        assert any(
            name.startswith("approx.search") for name in snap["histograms"]
        )

    def test_max_hops_bounds_work(self, graph_index, queries):
        _, one = beam_search(
            graph_index, queries, 8, max_hops=1, return_stats=True
        )
        _, many = beam_search(
            graph_index, queries, 8, max_hops=8, return_stats=True
        )
        assert one.hops == 1
        assert many.candidate_evals >= one.candidate_evals


class TestValidation:
    def test_bad_shapes(self, graph_index):
        with pytest.raises(ValidationError):
            beam_search(graph_index, np.ones((3, 2)), 4)  # wrong d

    def test_bad_k(self, graph_index, cloud):
        with pytest.raises(ValidationError):
            beam_search(graph_index, cloud[:4], 0)

    def test_ef_below_k_rejected(self, graph_index, cloud):
        with pytest.raises(ValidationError):
            beam_search(graph_index, cloud[:4], 8, ef=4)

    def test_single_query_row_promoted(self, graph_index, cloud):
        result = beam_search(graph_index, cloud[3], 5)
        assert result.indices.shape == (1, 5)
        assert result.indices[0, 0] == 3
