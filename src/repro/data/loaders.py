"""Persist and reload :class:`~repro.data.synthetic.Dataset` objects.

Two on-disk layouts, chosen by the path's suffix:

* ``.npz`` (default) — a compressed archive carrying the coordinate
  table plus the generator provenance, so a benchmark run can be
  re-executed on exactly the same points. Compact, but the archive must
  be decompressed whole on load.
* ``.npy`` + ``<name>.meta.json`` sidecar — the out-of-core layout. The
  table is a raw ``.npy`` that :func:`load_dataset` can open with
  ``mmap_mode=`` so a dataset far larger than RAM is never materialized:
  kernels read panels through the OS page cache, one sequential pass at
  a time (see docs/MEMORY.md). :func:`save_dataset` writes it in bounded
  row chunks through :func:`numpy.lib.format.open_memmap`, so *saving*
  never materializes the full array either — the source may itself be a
  memmap of another file.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import ValidationError
from ..ioutil import atomic_write_json
from .synthetic import Dataset

__all__ = ["save_dataset", "load_dataset"]

#: Rows copied per step of a chunked ``.npy`` save. At d=16 float64 this
#: is 8 MiB per chunk — far below any sane memory budget, large enough
#: that the copy is sequential-I/O bound.
DEFAULT_CHUNK_ROWS = 65536


def _sidecar_path(path: Path) -> Path:
    # ``path.stem`` only strips the final ``.npy``, so dotted dataset
    # names ("run.v1.npy" -> "run.v1.meta.json") survive intact.
    return path.with_name(path.stem + ".meta.json")


def _meta_doc(dataset: Dataset) -> dict:
    return {
        "name": dataset.name,
        "intrinsic_dim": dataset.intrinsic_dim,
        "params": dataset.params,
    }


def _dataset_from(points: np.ndarray, meta: dict, path: Path) -> Dataset:
    try:
        return Dataset(
            points,
            name=meta["name"],
            intrinsic_dim=meta["intrinsic_dim"],
            params=meta["params"],
        )
    except KeyError as exc:
        raise ValidationError(
            f"{path} metadata is missing the {exc.args[0]!r} field"
        ) from exc


def save_dataset(
    dataset: Dataset,
    path: str | Path,
    *,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Path:
    """Write ``dataset`` to ``path``.

    A ``.npy`` suffix selects the memmappable two-file layout (table +
    JSON sidecar), written ``chunk_rows`` rows at a time so the full
    array is never resident. Any other suffix gets ``.npz``
    *appended* — never substituted, so dotted names like ``run.v1``
    become ``run.v1.npz``, not ``run.npz``.
    """
    path = Path(path)
    if chunk_rows < 1:
        raise ValidationError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if path.suffix == ".npy":
        points = dataset.points
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.float64, shape=points.shape
        )
        try:
            for start in range(0, points.shape[0], chunk_rows):
                stop = min(start + chunk_rows, points.shape[0])
                out[start:stop] = points[start:stop]
            out.flush()
        finally:
            del out
        atomic_write_json(_sidecar_path(path), _meta_doc(dataset))
        return path
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    np.savez_compressed(
        path,
        points=dataset.points,
        meta=np.frombuffer(
            json.dumps(_meta_doc(dataset)).encode("utf-8"),
            dtype=np.uint8,
        ),
    )
    return path


def load_dataset(path: str | Path, *, mmap_mode: str | None = None) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`.

    ``mmap_mode`` (``"r"`` for the usual read-only mapping) memory-maps
    a ``.npy`` table instead of reading it: the returned dataset's
    ``points`` stay disk-backed, so tables larger than RAM load in
    milliseconds and kernels page panels in on demand. Requesting it
    for a ``.npz`` archive is an error — compressed archives cannot be
    mapped; re-save as ``.npy`` first.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"dataset file not found: {path}")
    if path.suffix == ".npy":
        sidecar = _sidecar_path(path)
        if not sidecar.exists():
            raise ValidationError(
                f"{path} has no metadata sidecar ({sidecar.name}); "
                "not a repro dataset"
            )
        try:
            meta = json.loads(sidecar.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{sidecar} is not valid JSON: {exc}") from exc
        points = np.load(path, mmap_mode=mmap_mode)
        return _dataset_from(points, meta, path)
    if mmap_mode is not None:
        raise ValidationError(
            f"{path} is a compressed .npz archive and cannot be "
            "memory-mapped; re-save it with save_dataset(ds, '....npy') "
            "to use mmap_mode"
        )
    with np.load(path) as archive:
        if "points" not in archive:
            raise ValidationError(f"{path} is not a repro dataset archive")
        if "meta" not in archive:
            raise ValidationError(
                f"{path} has points but no meta record; "
                "not a repro dataset archive"
            )
        points = archive["points"]
        try:
            meta = json.loads(archive["meta"].tobytes().decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValidationError(
                f"{path} carries a corrupt meta record: {exc}"
            ) from exc
    return _dataset_from(points, meta, path)
