"""Streaming maintenance with a sharded exact-solve mirror.

With ``shards > 0`` the streaming structure keeps a
:class:`~repro.shard.ShardedAllKnn` mirror in lock-step with its own
membership: inserts append to the owning shards, deletes tombstone and
invalidate per-shard plans. ``exact_solve`` through the mirror must be
bit-identical to the unsharded single-process solve at every point in
the churn — that is the streaming leg of the sharding acceptance
criteria.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import gaussian_mixture
from repro.errors import ValidationError
from repro.resilience.faults import FAULT_PLAN_ENV
from repro.trees.streaming import StreamingAllKnn


@pytest.fixture(autouse=True)
def no_ambient_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


@pytest.fixture
def stream():
    return gaussian_mixture(700, 8, n_clusters=4, seed=3).points


def paired(stream, **shard_kw):
    """A sharded structure and its unsharded twin fed identically."""
    sharded = StreamingAllKnn(8, 5, seed=1, **shard_kw)
    plain = StreamingAllKnn(8, 5, seed=1)
    return sharded, plain


def assert_exact_match(sharded, plain, q_idx, k):
    got = sharded.exact_solve(q_idx, k)
    want = plain.exact_solve(q_idx, k)
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(got.distances, want.distances)


class TestShardedMirror:
    def test_validation(self):
        with pytest.raises(ValidationError):
            StreamingAllKnn(4, 3, shards=-1)
        with pytest.raises(ValidationError):
            StreamingAllKnn(4, 3, shards=2, shard_transport="bogus")

    def test_mirror_mounted_lazily_on_first_insert(self, stream):
        s = StreamingAllKnn(8, 5, shards=2, shard_transport="local")
        assert s.sharded is None
        s.insert(stream[:200])
        assert s.sharded is not None
        assert s.sharded.map.n_alive == 200
        s.close()
        assert s.sharded is None

    @pytest.mark.parametrize("transport", ["local", "process"])
    def test_exact_solve_bit_identical_through_churn(
        self, stream, transport
    ):
        sharded, plain = paired(
            stream, shards=3, shard_transport=transport
        )
        with sharded:
            for s in (sharded, plain):
                s.insert(stream[:300])
            assert_exact_match(sharded, plain, np.arange(0, 300, 7), 5)

            for s in (sharded, plain):
                s.insert(stream[300:450])
                s.delete(np.arange(0, 200, 3))
                s.insert(stream[450:500])
            assert_exact_match(
                sharded, plain, np.arange(0, 500, 11), 5
            )

    def test_deletes_keep_mirror_membership_in_sync(self, stream):
        s = StreamingAllKnn(8, 4, shards=2, shard_transport="local")
        with s:
            s.insert(stream[:256])
            s.delete(np.arange(0, 100, 2))
            assert s.sharded.map.n_alive == 206
            res = s.exact_solve(np.arange(100, 120), 4)
            assert not np.isin(res.indices, np.arange(0, 100, 2)).any()

    def test_full_wipe_drops_and_rebuilds_mirror(self, stream):
        """Deleting every live point cannot leave an empty router; the
        mirror is dropped and rebuilt from scratch on the next insert,
        and stays bit-identical to the unsharded twin."""
        sharded, plain = paired(stream, shards=2, shard_transport="local")
        with sharded:
            for s in (sharded, plain):
                s.insert(stream[:128])
                s.delete(np.arange(128))
            assert sharded.sharded is None
            for s in (sharded, plain):
                s.insert(stream[128:300])
            assert sharded.sharded is not None
            assert_exact_match(sharded, plain, np.arange(128, 300, 5), 4)
