"""Live metric exporters: Prometheus text exposition and JSONL snapshots.

The registry's ``snapshot()`` dict is the single internal view of every
metric; this module turns it into the two formats operations tooling
actually consumes:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): counters as ``<name>_total``, gauges plain,
  histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` /
  ``_count``. Metric names are sanitized (dots become underscores, the
  repo's ``efficiency.model_ratio`` serves as
  ``efficiency_model_ratio``) and labeled series — stored internally as
  ``name{k="v"}`` keys — re-emit their labels natively.
* :class:`MetricsHTTPServer` — a stdlib ``ThreadingHTTPServer`` on a
  daemon thread serving ``GET /metrics`` (text exposition),
  ``/metrics.json`` (the raw snapshot) and ``/healthz``. Bind port 0
  to let the OS pick (tests do); ``server.port`` reports the real one.
* :class:`SnapshotWriter` — appends one timestamped snapshot per line
  to a JSONL file on a fixed period; the greppable flight recorder for
  runs without a scrape target.

Everything here *reads* snapshots — no exporter ever mutates a metric,
so scraping concurrently with a solve is always safe (see the
thread-safety notes in :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

from ..errors import ValidationError
from .metrics import MetricsRegistry, get_registry, split_key

__all__ = [
    "prometheus_text",
    "sanitize_metric_name",
    "MetricsHTTPServer",
    "SnapshotWriter",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a repo metric name onto the Prometheus grammar.

    Dots (our namespace separator) become underscores; any other
    illegal character does too; a leading digit gains a ``_`` prefix.
    """
    out = _BAD_CHARS.sub("_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """Prometheus float rendering: +Inf/-Inf/NaN spelled out."""
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def _labels_text(labels: dict[str, str], extra: str = "") -> str:
    parts = [f'{sanitize_metric_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: dict[str, Any]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` dict as Prometheus text.

    Families are grouped (one ``# HELP`` / ``# TYPE`` header per base
    name, every label combination under it) and the original dotted
    name is preserved in the ``# HELP`` line for traceability.
    """
    lines: list[str] = []
    seen: set[str] = set()

    def _family(raw_base: str, prom: str, kind: str) -> None:
        if prom in seen:
            return
        seen.add(prom)
        lines.append(f"# HELP {prom} repro metric {raw_base}")
        lines.append(f"# TYPE {prom} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        base, labels = split_key(key)
        prom = sanitize_metric_name(base) + "_total"
        _family(base, prom, "counter")
        lines.append(f"{prom}{_labels_text(labels)} {_fmt(value)}")

    for key, value in snapshot.get("gauges", {}).items():
        base, labels = split_key(key)
        prom = sanitize_metric_name(base)
        _family(base, prom, "gauge")
        lines.append(f"{prom}{_labels_text(labels)} {_fmt(value)}")

    for key, h in snapshot.get("histograms", {}).items():
        base, labels = split_key(key)
        prom = sanitize_metric_name(base)
        _family(base, prom, "histogram")
        cumulative = 0
        for edge, n in zip(h["edges"], h["buckets"]):
            cumulative += n
            le = _labels_text(labels, extra=f'le="{_fmt(float(edge))}"')
            lines.append(f"{prom}_bucket{le} {cumulative}")
        # overflow bucket -> the mandatory +Inf series
        inf = _labels_text(labels, extra='le="+Inf"')
        lines.append(f"{prom}_bucket{inf} {h['count']}")
        lines.append(f"{prom}_sum{_labels_text(labels)} {_fmt(float(h['sum']))}")
        lines.append(f"{prom}_count{_labels_text(labels)} {h['count']}")

    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    # populated per-server via a subclass attribute
    registry_getter: Callable[[], MetricsRegistry] = staticmethod(get_registry)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = prometheus_text(self.registry_getter().snapshot()).encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = json.dumps(
                self.registry_getter().snapshot(), sort_keys=True
            ).encode()
            ctype = "application/json"
        elif path == "/healthz":
            body = b"ok\n"
            ctype = "text/plain"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        # scrapes every few seconds would otherwise spam stderr
        return


class MetricsHTTPServer:
    """Serve ``/metrics`` from a daemon thread; start/stop or use as a
    context manager. ``port=0`` binds an ephemeral port (tests)."""

    def __init__(
        self,
        port: int = 9205,
        *,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
    ) -> None:
        getter = (lambda: registry) if registry is not None else get_registry

        class Handler(_MetricsHandler):
            registry_getter = staticmethod(getter)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


class SnapshotWriter:
    """Periodically append registry snapshots to a JSONL file.

    Each line is ``{"ts": <unix seconds>, "snapshot": {...}}``. The
    writer thread is a daemon and flushes a final snapshot on
    :meth:`stop`, so short runs still leave at least one record.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        period: float = 5.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if period <= 0:
            raise ValidationError(f"snapshot period must be > 0, got {period}")
        self.path = Path(path)
        self.period = float(period)
        self._registry = registry
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _snap(self) -> dict[str, Any]:
        registry = self._registry if self._registry is not None else get_registry()
        return {"ts": time.time(), "snapshot": registry.snapshot()}

    def _write(self, fh: Any) -> None:
        fh.write(json.dumps(self._snap(), sort_keys=True) + "\n")
        fh.flush()

    def _run(self) -> None:
        with self.path.open("a") as fh:
            while not self._stop.wait(self.period):
                self._write(fh)
            self._write(fh)  # final flush on stop

    def start(self) -> "SnapshotWriter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-jsonl", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(5.0, self.period * 2))
        self._thread = None

    def __enter__(self) -> "SnapshotWriter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
