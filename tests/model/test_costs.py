"""Unit tests for the Table 4 cost terms."""

from __future__ import annotations

import math

import pytest

from repro.config import IVY_BRIDGE_BLOCKING
from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE
from repro.model.costs import compute_terms, effective_tau_l, memory_terms


class TestComputeTerms:
    def test_tf_formula(self):
        """T_f = (2d + 3) m n / tau_f, Equation 3's first term."""
        m, n, d, k = 100, 200, 32, 4
        t_f, _ = compute_terms(m, n, d, k, IVY_BRIDGE)
        assert t_f == pytest.approx((2 * 32 + 3) * m * n / IVY_BRIDGE.tau_f)

    def test_to_formula(self):
        m, n, d, k = 100, 200, 32, 16
        _, t_o = compute_terms(m, n, d, k, IVY_BRIDGE)
        want = 24 * 0.5 * (m * n + m * k * math.log2(k)) / IVY_BRIDGE.tau_f
        assert t_o == pytest.approx(want)

    def test_k_one_log_floor(self):
        """k = 1 must not zero the heap term via log(1) = 0."""
        _, t_o = compute_terms(10, 10, 4, 1, IVY_BRIDGE)
        assert t_o > 24 * 0.5 * 100 / IVY_BRIDGE.tau_f

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            compute_terms(0, 1, 1, 1, IVY_BRIDGE)
        with pytest.raises(ValidationError):
            compute_terms(4, 4, 4, 5, IVY_BRIDGE)


class TestEffectiveTauL:
    def test_binary_pays_full_latency(self):
        assert effective_tau_l(IVY_BRIDGE, 2) == IVY_BRIDGE.tau_l

    def test_four_heap_pays_bandwidth(self):
        assert effective_tau_l(IVY_BRIDGE, 4) == IVY_BRIDGE.tau_b

    def test_invalid_arity(self):
        with pytest.raises(ValidationError):
            effective_tau_l(IVY_BRIDGE, 1)


class TestMemoryTerms:
    def _terms(self, kernel, **kw):
        params = dict(m=8192, n=8192, d=64, k=16)
        params.update(kw)
        return memory_terms(
            params["m"], params["n"], params["d"], params["k"],
            IVY_BRIDGE, IVY_BRIDGE_BLOCKING, kernel,
        )

    def test_var6_adds_exactly_tau_b_mn(self):
        """Equation 4: T_m^var6 = T_m^var1 + tau_b m n (heap arities equal)."""
        m = n = 8192
        var1 = memory_terms(m, n, 64, 16, IVY_BRIDGE, IVY_BRIDGE_BLOCKING, "var1", 2)
        var6 = memory_terms(m, n, 64, 16, IVY_BRIDGE, IVY_BRIDGE_BLOCKING, "var6", 2)
        assert var6.t_m - var1.t_m == pytest.approx(IVY_BRIDGE.tau_b * m * n)

    def test_gemm_adds_gather_and_c_traffic(self):
        """Equation 5: + tau_b (dm + dn + 2mn)."""
        m, n, d = 4096, 4096, 32
        var1 = memory_terms(m, n, d, 16, IVY_BRIDGE, IVY_BRIDGE_BLOCKING, "var1", 2)
        gemm = memory_terms(m, n, d, 16, IVY_BRIDGE, IVY_BRIDGE_BLOCKING, "gemm", 2)
        want = IVY_BRIDGE.tau_b * (d * m + d * n + 2 * m * n)
        assert gemm.t_m - var1.t_m == pytest.approx(want)

    def test_cc_term_steps_with_depth_blocks(self):
        """The C_c cost appears only once d exceeds d_c, and grows stepwise."""
        below = self._terms("var1", d=256)   # one depth block
        above = self._terms("var1", d=257)   # two depth blocks
        assert below.t_cc == 0.0
        assert above.t_cc > 0.0

    def test_var5_heap_reload_term(self):
        v5 = self._terms("var5", n=IVY_BRIDGE_BLOCKING.n_c * 3)
        v6 = self._terms("var6", n=IVY_BRIDGE_BLOCKING.n_c * 3)
        # same C traffic, but Var#5 pays heap reloads on top
        assert v5.t_extra > v6.t_extra

    def test_var5_equals_var6_for_single_slab(self):
        v5 = self._terms("var5", n=1024)
        v6_binary = memory_terms(
            8192, 1024, 64, 16, IVY_BRIDGE, IVY_BRIDGE_BLOCKING, "var6", 2
        )
        assert v5.t_extra == pytest.approx(v6_binary.t_extra)

    def test_unknown_kernel(self):
        with pytest.raises(ValidationError):
            self._terms("var9")

    def test_totals_add_up(self):
        terms = self._terms("var1")
        assert terms.total == pytest.approx(terms.t_f + terms.t_o + terms.t_m)
        d = terms.as_dict()
        assert d["total"] == pytest.approx(terms.total)
