"""Roofline and IPC view of the kNN kernels.

The paper's memory-boundness analysis (§2.1/§2.6) as two tables:

1. **Roofline** — arithmetic intensity (useful flops per modeled byte
   of slow traffic) per kernel and dimension, against the machine's
   ridge point. The GEMM approach sits below the ridge (memory-bound)
   across the low-d band where GSKNN already crossed it — the regime of
   GSKNN's biggest wins.
2. **GFLOPS vs IPC** — §4's closing remark: GFLOPS collapses with k
   because selection does no floating-point work, while IPC (which
   counts selection instructions) shows the machine still busy.

Run:  python examples/roofline_analysis.py
"""

from __future__ import annotations

from repro.machine import IVY_BRIDGE
from repro.model import PerformanceModel, predict_ipc
from repro.perf.roofline import (
    arithmetic_intensity,
    classify,
    ridge_intensity,
    roofline_bound,
)


def main() -> None:
    m = n = 8192
    k = 16
    machine = IVY_BRIDGE

    print(
        f"machine: {machine.name}, peak {machine.peak_gflops:.1f} GFLOPS, "
        f"ridge at {ridge_intensity(machine):.2f} flops/byte\n"
    )
    print("== roofline (m=n=8192, k=16) ==")
    print(
        f"{'d':>6} | {'gsknn f/B':>10} {'bound':>7} {'class':>14} | "
        f"{'gemm f/B':>9} {'bound':>7} {'class':>14}"
    )
    for d in (8, 16, 32, 64, 128, 256, 1024):
        cells = []
        for kernel in ("var1", "gemm"):
            intensity = arithmetic_intensity(m, n, d, k, kernel)
            cells.append(
                (
                    intensity,
                    roofline_bound(intensity, machine),
                    classify(m, n, d, k, kernel),
                )
            )
        (gi, gb, gc), (ri, rb, rc) = cells
        print(
            f"{d:>6} | {gi:>10.2f} {gb:>7.1f} {gc:>14} | "
            f"{ri:>9.2f} {rb:>7.1f} {rc:>14}"
        )

    print("\n== GFLOPS vs IPC as k grows (d=16) ==")
    model = PerformanceModel(machine)
    print(f"{'k':>6} {'GFLOPS':>8} {'IPC':>6}")
    for k_val in (4, 16, 64, 256, 1024, 4096):
        pred = model.predict("var1", m, n, 16, k_val)
        ipc = predict_ipc(m, n, 16, k_val, machine)
        print(f"{k_val:>6} {pred.gflops:>8.1f} {ipc:>6.2f}")
    print(
        "\n(GFLOPS falls ~30x over this k range; IPC falls far less —\n"
        " the machine is busy selecting, just not flopping.)"
    )


if __name__ == "__main__":
    main()
