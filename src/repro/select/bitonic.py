"""Bitonic sorting/merging networks, batched across rows.

§2.2 notes that merge-sort selection "guarantees contiguous memory
access, which can be highly vectorized with a bitonic merge" (citing
Chhugani et al.). This module provides that vectorized counterpart to
the scalar :mod:`repro.select.mergeselect`: compare-exchange networks
whose every stage is one numpy operation over all ``m`` rows at once —
the data-parallel shape a SIMD implementation has, expressed with
vector slices instead of vector registers.

* :func:`bitonic_sort_rows` — the full Batcher bitonic sorting network
  on each row of an ``(m, L)`` array (``L`` padded to a power of two);
* :func:`bitonic_merge_rows` — merge two ascending k-lists per row by
  reversing one side (making each row bitonic) and running the final
  ``log k`` merge stages;
* :func:`bitonic_merge_select_rows` — the paper's chunked selection:
  network-sort ``k``-chunks of an ``(m, n)`` candidate array and fold
  them into a running top-k with bitonic merges.

Like the scalar version, cost is Theta(n log^2 k) regardless of input
order — the fixed-complexity property that makes it lose to the heap's
O(n) best case inside GSKNN, which the ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = [
    "bitonic_sort_rows",
    "bitonic_merge_rows",
    "bitonic_merge_select_rows",
]


def _next_pow2(x: int) -> int:
    return 1 << (x - 1).bit_length()


def _compare_exchange(
    values: np.ndarray,
    ids: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    ascending: np.ndarray,
) -> None:
    """One network stage: conditionally swap columns lo[i] <-> hi[i].

    ``ascending`` says, per pair, whether the smaller element belongs at
    ``lo``. All rows are processed by the same four vector operations —
    the numpy transliteration of a SIMD min/max/blend sequence.
    """
    a_vals = values[:, lo]
    b_vals = values[:, hi]
    swap = np.where(ascending[None, :], a_vals > b_vals, a_vals < b_vals)
    a_ids = ids[:, lo]
    b_ids = ids[:, hi]
    values[:, lo] = np.where(swap, b_vals, a_vals)
    values[:, hi] = np.where(swap, a_vals, b_vals)
    ids[:, lo] = np.where(swap, b_ids, a_ids)
    ids[:, hi] = np.where(swap, a_ids, b_ids)


def _pad_rows(
    values: np.ndarray, ids: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, int]:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValidationError("bitonic routines operate on (m, L) arrays")
    m, width = values.shape
    if ids is None:
        ids = np.broadcast_to(np.arange(width, dtype=np.intp), values.shape)
    ids = np.asarray(ids, dtype=np.intp)
    if ids.shape != values.shape:
        raise ValidationError(
            f"ids shape {ids.shape} != values shape {values.shape}"
        )
    L = _next_pow2(max(width, 1))
    out_vals = np.full((m, L), np.inf, dtype=np.float64)
    out_ids = np.full((m, L), -1, dtype=np.intp)
    out_vals[:, :width] = values
    out_ids[:, :width] = ids
    return out_vals, out_ids, width


def _merge_stages(
    values: np.ndarray, ids: np.ndarray, span: int
) -> None:
    """The descending half-cleaner cascade of a bitonic merge of ``span``."""
    idx = np.arange(values.shape[1])
    stride = span // 2
    while stride >= 1:
        partner = idx ^ stride
        pairs = partner > idx
        lo = idx[pairs]
        hi = partner[pairs]
        ascending = np.ones(lo.size, dtype=bool)
        _compare_exchange(values, ids, lo, hi, ascending)
        stride //= 2


def bitonic_sort_rows(
    values: np.ndarray, ids: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sort every row ascending with a Batcher bitonic network.

    Returns new ``(values, ids)`` arrays of the original width; padding
    (``+inf`` / ``-1``) is added internally and stripped on return.
    """
    padded_vals, padded_ids, width = _pad_rows(values, ids)
    L = padded_vals.shape[1]
    idx = np.arange(L)
    size = 2
    while size <= L:
        stride = size // 2
        while stride >= 1:
            partner = idx ^ stride
            pairs = partner > idx
            lo = idx[pairs]
            hi = partner[pairs]
            # direction per pair: ascending iff its size-block is even
            ascending = (lo & size) == 0
            _compare_exchange(padded_vals, padded_ids, lo, hi, ascending)
            stride //= 2
        size *= 2
    return padded_vals[:, :width].copy(), padded_ids[:, :width].copy()


def bitonic_merge_rows(
    a_values: np.ndarray,
    a_ids: np.ndarray,
    b_values: np.ndarray,
    b_ids: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two row-wise ascending lists, keeping the k smallest per row.

    Both inputs must have power-of-two width >= k is not required — they
    are padded. The classic trick: append ``b`` reversed so each row is
    a bitonic sequence, then run the merge cascade.
    """
    a_values = np.asarray(a_values, dtype=np.float64)
    b_values = np.asarray(b_values, dtype=np.float64)
    if a_values.shape != b_values.shape:
        raise ValidationError(
            f"bitonic merge needs equal shapes, got {a_values.shape} "
            f"and {b_values.shape}"
        )
    if k < 1 or k > a_values.shape[1] + b_values.shape[1]:
        raise ValidationError(f"k={k} out of range for the merged width")
    width = a_values.shape[1]
    L = _next_pow2(width)
    m = a_values.shape[0]

    merged_vals = np.full((m, 2 * L), np.inf, dtype=np.float64)
    merged_ids = np.full((m, 2 * L), -1, dtype=np.intp)
    merged_vals[:, :width] = a_values
    merged_ids[:, :width] = np.asarray(a_ids, dtype=np.intp)
    # reversed b occupies the tail so the row reads up-then-down: bitonic
    merged_vals[:, 2 * L - width :] = np.asarray(b_values)[:, ::-1]
    merged_ids[:, 2 * L - width :] = np.asarray(b_ids, dtype=np.intp)[:, ::-1]

    _merge_stages(merged_vals, merged_ids, 2 * L)
    return merged_vals[:, :k].copy(), merged_ids[:, :k].copy()


def bitonic_merge_select_rows(
    values: np.ndarray,
    k: int,
    ids: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise k smallest of an (m, n) array via chunked bitonic merges.

    The vectorized form of §2.2's merge-sort selection: cut each row
    into ``k``-wide chunks, network-sort all chunks of all rows at once,
    then fold chunks into the running top-k list with bitonic merges.
    Returns ``(values, ids)`` with rows ascending.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValidationError("candidate array must be 2-D")
    m, n = values.shape
    if k < 1 or k > n:
        raise ValidationError(f"k must be in [1, {n}], got {k}")
    if ids is None:
        ids = np.broadcast_to(np.arange(n, dtype=np.intp), values.shape)
    ids = np.asarray(ids, dtype=np.intp)

    best_vals: np.ndarray | None = None
    best_ids: np.ndarray | None = None
    for start in range(0, n, k):
        chunk_vals, chunk_ids, _ = _pad_rows(
            values[:, start : start + k], ids[:, start : start + k]
        )
        chunk_vals, chunk_ids = bitonic_sort_rows(chunk_vals, chunk_ids)
        if best_vals is None:
            best_vals = chunk_vals[:, :k]
            best_ids = chunk_ids[:, :k]
            if best_vals.shape[1] < k:  # first chunk narrower than k
                pad = k - best_vals.shape[1]
                best_vals = np.pad(
                    best_vals, ((0, 0), (0, pad)), constant_values=np.inf
                )
                best_ids = np.pad(
                    best_ids, ((0, 0), (0, pad)), constant_values=-1
                )
            continue
        pad = best_vals.shape[1] - chunk_vals.shape[1]
        if pad > 0:
            chunk_vals = np.pad(
                chunk_vals, ((0, 0), (0, pad)), constant_values=np.inf
            )
            chunk_ids = np.pad(chunk_ids, ((0, 0), (0, pad)), constant_values=-1)
        best_vals, best_ids = bitonic_merge_rows(
            best_vals, best_ids, chunk_vals[:, :k], chunk_ids[:, :k], k
        )
    assert best_vals is not None and best_ids is not None
    return best_vals, best_ids
