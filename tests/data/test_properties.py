"""Property-based tests for the dataset generators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import embedded_gaussian, gaussian_mixture, uniform_hypercube


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_uniform_shape_and_bounds(n, d, seed):
    ds = uniform_hypercube(n, d, seed=seed)
    assert ds.points.shape == (n, d)
    assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0
    assert np.isfinite(ds.points).all()


@given(
    st.integers(min_value=1, max_value=150),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_mixture_finite_and_deterministic(n, d, clusters, seed):
    a = gaussian_mixture(n, d, n_clusters=clusters, seed=seed)
    b = gaussian_mixture(n, d, n_clusters=clusters, seed=seed)
    np.testing.assert_array_equal(a.points, b.points)
    assert np.isfinite(a.points).all()


@given(
    st.integers(min_value=4, max_value=100),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=16),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_embedded_rank_matches_intrinsic(n, intrinsic, extra, seed):
    d = intrinsic + extra
    ds = embedded_gaussian(
        n, d, intrinsic_dim=intrinsic, noise_std=0.0, seed=seed
    )
    centered = ds.points - ds.points.mean(axis=0)
    s = np.linalg.svd(centered, compute_uv=False)
    rank = int((s > 1e-9 * max(s[0], 1e-300)).sum())
    assert rank <= min(intrinsic, n - 1) or n == 1
