"""Tests for the task-parallel all-NN driver (§2.5 integration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import embedded_gaussian
from repro.errors import ValidationError
from repro.trees import all_nearest_neighbors


@pytest.fixture(scope="module")
def cloud():
    return embedded_gaussian(500, 12, intrinsic_dim=5, seed=9).points


@pytest.mark.parametrize("n_workers", [2, 3, 8])
def test_parallel_equals_serial(cloud, n_workers):
    serial = all_nearest_neighbors(
        cloud, 4, leaf_size=64, iterations=2, seed=3, n_workers=1, tol=0.0
    )
    parallel = all_nearest_neighbors(
        cloud, 4, leaf_size=64, iterations=2, seed=3,
        n_workers=n_workers, tol=0.0,
    )
    np.testing.assert_allclose(
        serial.result.distances, parallel.result.distances, atol=1e-12
    )
    assert parallel.group_count == serial.group_count


def test_parallel_lsh_method(cloud):
    serial = all_nearest_neighbors(
        cloud, 4, method="lsh", leaf_size=128, iterations=2, seed=3, tol=0.0
    )
    parallel = all_nearest_neighbors(
        cloud, 4, method="lsh", leaf_size=128, iterations=2, seed=3,
        n_workers=4, tol=0.0,
    )
    np.testing.assert_allclose(
        serial.result.distances, parallel.result.distances, atol=1e-12
    )


def test_invalid_workers(cloud):
    with pytest.raises(ValidationError):
        all_nearest_neighbors(cloud, 4, leaf_size=64, n_workers=0)


def test_kernel_seconds_still_accounted(cloud):
    report = all_nearest_neighbors(
        cloud, 4, leaf_size=64, iterations=1, n_workers=4
    )
    assert report.kernel_seconds > 0
