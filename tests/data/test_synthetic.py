"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Dataset, embedded_gaussian, gaussian_mixture, uniform_hypercube
from repro.errors import ValidationError


class TestDataset:
    def test_canonicalizes_dtype_and_layout(self):
        ds = Dataset(np.ones((3, 2), dtype=np.float32, order="F"))
        assert ds.points.dtype == np.float64
        assert ds.points.flags["C_CONTIGUOUS"]

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Dataset(np.empty((0, 3)))
        with pytest.raises(ValidationError):
            Dataset(np.empty((3, 0)))

    def test_shape_accessors(self):
        ds = Dataset(np.ones((5, 7)))
        assert ds.n == 5
        assert ds.dim == 7

    def test_squared_norms(self, rng):
        pts = rng.random((10, 4))
        ds = Dataset(pts)
        np.testing.assert_allclose(ds.squared_norms(), (pts**2).sum(axis=1))


class TestUniformHypercube:
    def test_shape_and_range(self):
        ds = uniform_hypercube(100, 8, seed=0)
        assert ds.points.shape == (100, 8)
        assert ds.points.min() >= 0.0
        assert ds.points.max() <= 1.0

    def test_reproducible(self):
        a = uniform_hypercube(50, 4, seed=42).points
        b = uniform_hypercube(50, 4, seed=42).points
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = uniform_hypercube(50, 4, seed=1).points
        b = uniform_hypercube(50, 4, seed=2).points
        assert not np.array_equal(a, b)

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            uniform_hypercube(0, 4)
        with pytest.raises(ValidationError):
            uniform_hypercube(4, 0)

    def test_accepts_generator(self):
        gen = np.random.default_rng(7)
        ds = uniform_hypercube(10, 2, seed=gen)
        assert ds.n == 10


class TestGaussianMixture:
    def test_shape(self):
        ds = gaussian_mixture(200, 5, n_clusters=3, seed=0)
        assert ds.points.shape == (200, 5)

    def test_clusters_create_structure(self):
        """Mixture data must be more clustered than uniform: the mean
        nearest-neighbor distance should be clearly smaller."""
        mix = gaussian_mixture(300, 8, n_clusters=4, cluster_std=0.02, seed=0)
        uni = uniform_hypercube(300, 8, seed=0)

        def mean_nn(pts):
            d = ((pts[:, None] - pts[None, :]) ** 2).sum(-1)
            np.fill_diagonal(d, np.inf)
            return np.sqrt(d.min(axis=1)).mean()

        assert mean_nn(mix.points) < mean_nn(uni.points)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            gaussian_mixture(10, 3, n_clusters=0)
        with pytest.raises(ValidationError):
            gaussian_mixture(10, 3, cluster_std=0.0)


class TestEmbeddedGaussian:
    def test_shape_and_metadata(self):
        ds = embedded_gaussian(128, 64, intrinsic_dim=10, seed=0)
        assert ds.points.shape == (128, 64)
        assert ds.intrinsic_dim == 10
        assert ds.params["d"] == 64

    def test_rejects_d_below_intrinsic(self):
        with pytest.raises(ValidationError):
            embedded_gaussian(10, 5, intrinsic_dim=10)

    def test_embedding_preserves_distances(self):
        """The orthonormal embedding is an isometry: pairwise distances of
        the embedded cloud match the latent cloud (up to the tiny noise)."""
        ds = embedded_gaussian(64, 32, intrinsic_dim=6, noise_std=0.0, seed=3)
        pts = ds.points
        # rank of the centered cloud equals the intrinsic dimension
        centered = pts - pts.mean(axis=0)
        s = np.linalg.svd(centered, compute_uv=False)
        assert (s > 1e-8 * s[0]).sum() == 6

    def test_noise_makes_full_rank(self):
        ds = embedded_gaussian(64, 16, intrinsic_dim=4, noise_std=1e-3, seed=3)
        centered = ds.points - ds.points.mean(axis=0)
        s = np.linalg.svd(centered, compute_uv=False)
        assert (s > 1e-10 * s[0]).sum() == 16

    def test_reproducible(self):
        a = embedded_gaussian(32, 16, seed=9).points
        b = embedded_gaussian(32, 16, seed=9).points
        np.testing.assert_array_equal(a, b)
