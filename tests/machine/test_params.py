"""Unit tests for machine descriptions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.machine import CacheLevel, IVY_BRIDGE, MachineParams, TINY_MACHINE


class TestCacheLevel:
    def test_n_sets(self):
        level = CacheLevel("L1", 32 * 1024, 64, 8)
        assert level.n_sets == 64

    def test_rejects_size_below_line(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("L0", 32, 64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("L1", 1024, 48)

    def test_rejects_indivisible_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("L1", 64 * 3, 64, 2)


class TestMachineParams:
    def test_paper_constants(self):
        """Figure 4's single-core numbers must be encoded exactly."""
        assert IVY_BRIDGE.flops_per_cycle == 8
        assert IVY_BRIDGE.clock_hz == 3.54e9
        assert IVY_BRIDGE.tau_b == 2.2e-9
        assert IVY_BRIDGE.tau_l == 13.91e-9
        assert IVY_BRIDGE.epsilon == 0.5
        assert IVY_BRIDGE.peak_gflops == pytest.approx(8 * 3.54)

    def test_ten_core_scaling_matches_figure4(self):
        """tau_f = 10 x 8 x 3.10e9; tau_b and tau_l at 1/5."""
        ten = IVY_BRIDGE.scaled(10, clock_hz=3.10e9)
        assert ten.peak_gflops == pytest.approx(248.0)
        assert ten.tau_b == pytest.approx(2.2e-9 / 5)
        assert ten.tau_l == pytest.approx(13.91e-9 / 5)

    def test_scaling_is_idempotent_through_base(self):
        """Scaling 10 -> 4 cores must equal scaling 1 -> 4."""
        ten = IVY_BRIDGE.scaled(10)
        four_from_ten = ten.scaled(4)
        four_direct = IVY_BRIDGE.scaled(4)
        assert four_from_ten.tau_b == pytest.approx(four_direct.tau_b)

    def test_bandwidth_saturates_at_cap(self):
        twenty = IVY_BRIDGE.scaled(20)
        ten = IVY_BRIDGE.scaled(10)
        assert twenty.tau_b == ten.tau_b  # both capped at /5
        assert twenty.tau_f > ten.tau_f   # flops keep scaling

    def test_cache_lookup(self):
        assert IVY_BRIDGE.cache("L2").size_bytes == 256 * 1024
        with pytest.raises(ConfigurationError):
            IVY_BRIDGE.cache("L9")

    def test_cache_order_enforced(self):
        with pytest.raises(ConfigurationError):
            MachineParams(
                name="bad",
                flops_per_cycle=1,
                clock_hz=1e9,
                tau_b=1e-9,
                tau_l=1e-9,
                caches=(
                    CacheLevel("L1", 2048),
                    CacheLevel("L2", 1024),
                ),
            )

    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            MachineParams(
                name="bad",
                flops_per_cycle=1,
                clock_hz=1e9,
                tau_b=1e-9,
                tau_l=1e-9,
                epsilon=1.5,
            )

    def test_tiny_machine_valid(self):
        assert TINY_MACHINE.caches[0].size_bytes < TINY_MACHINE.caches[-1].size_bytes


class TestPortability:
    """The conclusion's portability claim: a new x86 generation means new
    block sizes (derived from its caches) and constants — nothing else."""

    def test_haswell_profile(self):
        from repro.machine import HASWELL

        assert HASWELL.flops_per_cycle == 16  # FMA
        assert HASWELL.peak_gflops > IVY_BRIDGE.peak_gflops

    def test_blocking_rederives_for_new_machine(self):
        from repro.core.tuning import select_blocking
        from repro.machine import HASWELL

        ivy = select_blocking(IVY_BRIDGE)
        hsw = select_blocking(HASWELL)
        # same L1/L2 -> same d_c and m_c; bigger L3 -> wider n_c
        assert hsw.d_c == ivy.d_c
        assert hsw.n_c > ivy.n_c

    def test_model_runs_unchanged_on_new_machine(self):
        from repro.core.tuning import select_blocking
        from repro.machine import HASWELL
        from repro.model import PerformanceModel

        model = PerformanceModel(HASWELL, select_blocking(HASWELL))
        pred = model.predict("var1", 8192, 8192, 256, 16)
        assert 0 < pred.gflops <= HASWELL.peak_gflops
        # more flops per cycle -> higher predicted throughput at high d
        ivy_model = PerformanceModel()
        assert pred.gflops > ivy_model.predict(
            "var1", 8192, 8192, 256, 16
        ).gflops
