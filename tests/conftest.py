"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_cloud(rng) -> np.ndarray:
    """A 300-point, 17-dimensional cloud (odd sizes exercise ragged edges)."""
    return rng.random((300, 17))


def brute_force_knn(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    p: float = 2.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth kNN: full distance matrix + argsort.

    Returns ``(distances, global_ids)``, rows ascending. Squared l2 for
    p == 2, true p-norm otherwise — the library's distance conventions.
    """
    Q = X[np.asarray(q_idx, dtype=np.intp)]
    R = X[np.asarray(r_idx, dtype=np.intp)]
    diff = np.abs(Q[:, None, :] - R[None, :, :])
    if p == 2.0:
        D = (diff**2).sum(axis=2)
    elif np.isinf(p):
        D = diff.max(axis=2)
    elif p == 1.0:
        D = diff.sum(axis=2)
    else:
        D = (diff**p).sum(axis=2) ** (1.0 / p)
    order = np.argsort(D, axis=1, kind="stable")[:, :k]
    rows = np.arange(Q.shape[0])[:, None]
    return D[rows, order], np.asarray(r_idx, dtype=np.intp)[order]


def assert_knn_equal(result, truth_dist, truth_ids, X=None, atol=1e-9):
    """Distances must match exactly (up to fp); ids may differ on ties.

    Where distances are tied, any id attaining the tied distance is
    accepted (all kernels break ties arbitrarily, like the paper's).
    """
    got = np.sort(result.distances, axis=1)
    want = np.sort(truth_dist, axis=1)
    np.testing.assert_allclose(got, want, atol=atol)
    # every reported id must actually attain its reported distance
    if X is not None:
        for i in range(result.m):
            for dist, ident in zip(result.distances[i], result.indices[i]):
                assert ident >= 0
