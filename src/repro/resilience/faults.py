"""Deterministic fault injection for the execution layer.

The old hook — ``REPRO_BACKEND_TEST_CRASH_AT`` hard-exiting one worker
process at one chunk start — proved the ``BrokenProcessPool`` path but
nothing else. A :class:`FaultPlan` generalizes it into a *seeded
schedule* of three fault kinds, consumed by all three backends, the
schedule executor, and the distributed solver's rank loop:

* **crash** — the executing site dies: ``os._exit`` in a process
  worker (a real ``BrokenProcessPool``), an :class:`InjectedFault`
  raise in threads/serial/task/rank scopes;
* **slow** — the site sleeps ``slow_seconds`` before computing, so
  deadline enforcement paths get exercised;
* **alloc** — an injected :class:`MemoryError` before the kernel runs.

Decisions are *stateless and deterministic*: whether fault ``kind``
fires at ``(scope, key, attempt)`` is a pure hash of those coordinates
plus the plan's seed. Worker processes therefore need no shared RNG —
the same plan makes the same faults fire in the same places on every
run, which is what lets tests pin every recovery path instead of
relying on luck. The ``attempt`` coordinate means a chunk that crashed
on attempt 0 rolls fresh dice on attempt 1, so bounded retry converges
for any rate < 1; explicit ``crash_at`` entries fire on *every*
attempt, forcing the full fallback ladder.

Grammar (CLI ``--fault-plan``, env ``REPRO_FAULT_PLAN``)::

    seed=7,crash=0.3,slow=0.2,slow_ms=20,alloc=0.1,crash_at=0|128

comma-separated ``key=value`` pairs; rates in ``[0, 1]``;
``crash_at`` is a ``|``-separated list of chunk starts.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

from ..errors import InjectedFault, ValidationError
from ..obs.metrics import get_registry as _get_registry

__all__ = ["FaultPlan", "FAULT_PLAN_ENV"]

#: Environment variable holding a fault-plan spec string. Read once at
#: the driver entry points (``gsknn_data_parallel``,
#: ``execute_schedule``, ``DistributedAllKnn.solve``) — which also
#: switch on a default retry policy, so a plan in the environment turns
#: every suite run into a recovery-path exercise that must still pass.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_RATE_KEYS = ("crash", "slow", "alloc")


def _unit(seed: int, kind: str, scope: str, key: object, attempt: int) -> float:
    """Deterministic uniform value in [0, 1) for one decision site.

    blake2b, not ``zlib.crc32``: CRC is linear, so single-character
    differences between site strings (adjacent chunk starts, successive
    attempts) produce tightly correlated values — a 0.5 crash rate would
    fire on nearly all sites or nearly none, seed depending. A
    cryptographic hash gives independent decisions per coordinate.
    (Never ``hash()``: it is salted per process, and workers must agree
    with the parent.)
    """
    text = f"{seed}:{kind}:{scope}:{key}:{attempt}"
    digest = hashlib.blake2b(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Rates are per-(scope, key, attempt) probabilities; ``crash_at``
    chunk starts crash unconditionally on every attempt (the
    generalization of the legacy env hook).
    """

    seed: int = 0
    crash: float = 0.0
    slow: float = 0.0
    alloc: float = 0.0
    slow_seconds: float = 0.02
    crash_at: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in _RATE_KEYS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(
                    f"fault rate {name} must be in [0, 1], got {rate}"
                )
        if self.slow_seconds < 0:
            raise ValidationError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``key=value,...`` spec grammar (see module docstring)."""
        kwargs: dict = {}
        for part in filter(None, (p.strip() for p in text.split(","))):
            if "=" not in part:
                raise ValidationError(
                    f"fault-plan entry {part!r} is not key=value "
                    f"(full spec: {text!r})"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "seed":
                    kwargs["seed"] = int(value)
                elif key in _RATE_KEYS:
                    kwargs[key] = float(value)
                elif key == "slow_ms":
                    kwargs["slow_seconds"] = float(value) / 1e3
                elif key == "slow_s":
                    kwargs["slow_seconds"] = float(value)
                elif key == "crash_at":
                    kwargs["crash_at"] = tuple(
                        int(v) for v in value.split("|") if v != ""
                    )
                else:
                    raise ValidationError(
                        f"unknown fault-plan key {key!r} (full spec: {text!r})"
                    )
            except ValueError as exc:
                raise ValidationError(
                    f"bad fault-plan value {part!r}: {exc}"
                ) from None
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: "FaultPlan | str | None") -> "FaultPlan | None":
        if value is None or isinstance(value, FaultPlan):
            return value
        return cls.parse(value)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``."""
        spec = os.environ.get(FAULT_PLAN_ENV)
        if not spec:
            return None
        return cls.parse(spec)

    def spec(self) -> str:
        """Round-trippable spec string (what workers receive)."""
        parts = [f"seed={self.seed}"]
        for name in _RATE_KEYS:
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name}={rate}")
        if self.slow:
            parts.append(f"slow_s={self.slow_seconds}")
        if self.crash_at:
            parts.append(
                "crash_at=" + "|".join(str(c) for c in self.crash_at)
            )
        return ",".join(parts)

    @property
    def active(self) -> bool:
        return bool(
            self.crash or self.slow or self.alloc or self.crash_at
        )

    # -- decisions ------------------------------------------------------------

    def decide(
        self, scope: str, key: object, attempt: int = 0
    ) -> str | None:
        """Which fault (if any) fires at this site — pure, no side effects.

        ``scope`` names the execution layer (``"chunk"``, ``"task"``,
        ``"rank"``), ``key`` the work item within it, ``attempt`` the
        0-based retry count. Order: crash beats alloc beats slow.
        """
        if scope == "chunk" and isinstance(key, int) and key in self.crash_at:
            return "crash"
        if self.crash and _unit(self.seed, "crash", scope, key, attempt) < self.crash:
            return "crash"
        if self.alloc and _unit(self.seed, "alloc", scope, key, attempt) < self.alloc:
            return "alloc"
        if self.slow and _unit(self.seed, "slow", scope, key, attempt) < self.slow:
            return "slow"
        return None

    def apply(
        self,
        scope: str,
        key: object,
        attempt: int = 0,
        *,
        hard_exit: bool = False,
    ) -> None:
        """Fire the decided fault, if any.

        ``hard_exit`` is set only inside process-pool workers, where a
        crash must be a real process death (``os._exit``) so the parent
        sees a genuine ``BrokenProcessPool``; elsewhere a crash raises
        :class:`InjectedFault`. ``slow`` sleeps and returns; ``alloc``
        raises :class:`MemoryError`.
        """
        kind = self.decide(scope, key, attempt)
        if kind is None:
            return
        registry = _get_registry()
        if registry.enabled:
            registry.inc("resilience.faults_injected")
            registry.inc(f"resilience.faults_injected.{kind}")
        if kind == "slow":
            time.sleep(self.slow_seconds)
            return
        if kind == "crash":
            if hard_exit:
                os._exit(13)
            raise InjectedFault(
                f"injected crash at {scope}={key} attempt={attempt} "
                f"(seed={self.seed})"
            )
        raise MemoryError(
            f"injected allocation failure at {scope}={key} "
            f"attempt={attempt} (seed={self.seed})"
        )
