"""Cross-call cache of reference squared norms (the paper's global X2).

The paper computes ``|x_i|^2`` once per coordinate table and reuses it
across every kernel call (§2.2's side table). The batch and streaming
drivers used to recompute it per batch/refresh — an O(N d) pass whose
cost is pure waste whenever the table hasn't changed. This cache keys
on the table's *identity and shape*: the same ndarray object at the
same shape hits; a new object (e.g. the streaming structure's
``vstack`` after an insert) or a reshape invalidates naturally because
the key no longer matches.

Entries hold only a weak reference to the table, so caching never
extends an array's lifetime; a handful of entries (LRU, default 8)
bounds memory for the norm vectors themselves. Hits and misses are
counted in the metrics registry (``norms.cache_hits`` /
``norms.cache_misses``) when observability is on.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np

from ..obs.metrics import get_registry as _get_registry
from .norms import squared_norms

__all__ = ["SquaredNormCache", "cached_squared_norms", "get_norm_cache"]


class SquaredNormCache:
    """Identity-keyed LRU cache of ``squared_norms(X)`` results."""

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        # id(X) -> (weakref to X, shape, norms)
        self._entries: OrderedDict[
            int, tuple[weakref.ref, tuple[int, ...], np.ndarray]
        ] = OrderedDict()

    def get(self, X: np.ndarray) -> np.ndarray:
        """``squared_norms(X)``, cached on ``X``'s identity and shape."""
        key = id(X)
        registry = _get_registry()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                ref, shape, norms = entry
                if ref() is X and shape == X.shape:
                    self._entries.move_to_end(key)
                    if registry.enabled:
                        registry.inc("norms.cache_hits")
                    return norms
                # stale: the id was recycled by a different/reshaped array
                del self._entries[key]
        norms = squared_norms(X)
        if registry.enabled:
            registry.inc("norms.cache_misses")
        try:
            ref = weakref.ref(X, self._make_reaper(key))
        except TypeError:
            # non-weakref-able view/subclass: still correct, just uncached
            return norms
        with self._lock:
            self._entries[key] = (ref, X.shape, norms)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return norms

    def _make_reaper(self, key: int):
        def _reap(_ref: weakref.ref) -> None:
            with self._lock:
                self._entries.pop(key, None)

        return _reap

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Process-global instance the drivers share.
_GLOBAL_CACHE = SquaredNormCache()


def get_norm_cache() -> SquaredNormCache:
    return _GLOBAL_CACHE


def cached_squared_norms(X: np.ndarray) -> np.ndarray:
    """Module-level convenience over the global cache."""
    return _GLOBAL_CACHE.get(X)
