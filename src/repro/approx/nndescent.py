"""NN-descent k-NN graph construction seeded from randomized KD-trees.

Builds the approximate tier's search graph (Dong et al.'s NN-descent,
the construction "Fast Single-Core K-Nearest Neighbor Graph
Computation" accelerates with blocked evaluation):

1. **Initialization** — instead of random lists, the graph starts from
   :func:`~repro.trees.allknn.all_nearest_neighbors` over a couple of
   :class:`~repro.trees.rkdtree.RandomizedKDForest` trees: every leaf
   solve runs through the fused gsknn kernel (plan-cached panels,
   arena-backed workspaces), so the starting lists already carry most
   of the local structure.
2. **Refinement rounds** — the NN-descent observation: a neighbor of a
   neighbor is probably a neighbor. Each round builds, for every point,
   a candidate id matrix from its neighbors' lists (plus a sample of
   *reverse* neighbors, so directed edges propagate both ways), then
   evaluates **all** candidate distances with
   :func:`~repro.approx.blockeval.candidate_distances` — blocked
   batched GEMMs, never per-pair Python math — and folds them into the
   lists with the vectorized dedup-merge. Rounds stop when the fraction
   of updated lists drops below ``tol``.

Lists follow the repo's all-kNN convention: a point's own id appears in
its list (distance 0), exactly as the exact kernels return it, so the
built graph's lists ARE an approximate all-kNN answer and recall is
directly comparable against :func:`exact_all_knn` truth.

Everything is deterministic from ``seed``: the forest init, the
reverse-neighbor sample, and the candidate subsampling all derive from
one seeded generator.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.neighbors import KnnResult, intersection_counts, merge_topk
from ..core.norms import squared_norms
from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..validation import as_coordinate_table, check_finite, check_k
from .blockeval import candidate_distances

__all__ = ["GraphBuildReport", "GraphIndex", "build_graph_index"]


@dataclass(frozen=True)
class GraphBuildReport:
    """How one NN-descent build went (attached to the index)."""

    rounds: int
    converged: bool
    init_seconds: float
    refine_seconds: float
    total_seconds: float
    candidate_evals: int
    update_fractions: list[float] = field(default_factory=list)
    recall_curve: list[float] = field(default_factory=list)

    @property
    def total_build_seconds(self) -> float:
        return self.total_seconds


@dataclass
class GraphIndex:
    """A built k-NN graph: adjacency lists + fixed entry points.

    ``neighbors``/``distances`` are ``(n, k_build)`` in the
    :class:`~repro.core.neighbors.KnnResult` convention (rows ascending,
    ``-1``/``+inf`` padding, self-id included). ``entry_points`` are the
    seeded starting nodes every beam search begins from — fixed at
    build time so queries are deterministic.
    """

    X: np.ndarray
    neighbors: np.ndarray
    distances: np.ndarray
    entry_points: np.ndarray
    k_build: int
    seed: int
    build_report: GraphBuildReport | None = None
    adjacency: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.neighbors = np.asarray(self.neighbors, dtype=np.intp)
        self.distances = np.asarray(self.distances, dtype=np.float64)
        self.entry_points = np.asarray(self.entry_points, dtype=np.intp)
        if (
            self.neighbors.shape != self.distances.shape
            or self.neighbors.ndim != 2
            or self.neighbors.shape[0] != self.X.shape[0]
        ):
            raise ValidationError(
                f"graph arrays disagree: X {self.X.shape}, neighbors "
                f"{self.neighbors.shape}, distances {self.distances.shape}"
            )
        if self.adjacency is None:
            self.adjacency = self.neighbors
        else:
            self.adjacency = np.asarray(self.adjacency, dtype=np.intp)
            if (
                self.adjacency.ndim != 2
                or self.adjacency.shape[0] != self.X.shape[0]
            ):
                raise ValidationError(
                    f"adjacency {self.adjacency.shape} does not match "
                    f"X {self.X.shape}"
                )
        self._X2: np.ndarray | None = None
        self._hop: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._entry: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def n(self) -> int:
        return int(self.X.shape[0])

    @property
    def d(self) -> int:
        return int(self.X.shape[1])

    def squared_norms(self) -> np.ndarray:
        """Reference squared norms, computed once and cached."""
        if self._X2 is None:
            self._X2 = squared_norms(self.X)
        return self._X2

    def hop_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(X17, N33)`` for the beam-search hop loop.

        Graph traversal only ranks candidates — full float64 precision
        buys nothing there, while halving the gather/GEMM traffic and
        sort widths roughly halves hop latency. The exact re-rank pass
        stays float64. ``int32`` ids are safe: indices are < 2**31.

        Both arrays carry a **sentinel row** ``n``: a virtual point at
        the origin with infinite squared norm (so its distance is
        always ``+inf``) whose adjacency is itself. Empty slots hold
        ``n`` instead of ``-1``, which lets every gather in the hop
        loop run unmasked — no ``where`` per hop, padding self-rejects
        by distance.
        """
        if self._hop is None:
            n, d = self.X.shape
            # fused layout: column d carries the squared norm, so one
            # gather + one einsum (against a query row extended with
            # -0.5) yields q.x - x^2/2 and the hop metric needs no
            # separate norm gather
            X17 = np.zeros((n + 1, d + 1), dtype=np.float32)
            X17[:n, :d] = self.X
            X17[:n, d] = squared_norms(self.X)
            X17[n, d] = np.inf
            width = self.adjacency.shape[1]
            N33 = np.full((n + 1, width), n, dtype=np.int32)
            np.copyto(
                N33[:n], self.adjacency, where=self.adjacency >= 0
            )
            self._hop = (X17, N33)
        return self._hop

    def entry_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(E32, XE17)`` for beam-search pool seeding.

        Seeding is the one brute-force stage of a search — a plain GEMM
        over the entry-point panel at full BLAS efficiency — so the
        gathered fused panel (same norm-column layout as
        :meth:`hop_arrays`) is cached once rather than re-gathered per
        call.
        """
        if self._entry is None:
            X17, _ = self.hop_arrays()
            self._entry = (
                self.entry_points.astype(np.int32),
                np.ascontiguousarray(X17[self.entry_points]),
            )
        return self._entry

    def as_result(self, k: int | None = None) -> KnnResult:
        """The graph lists as an all-kNN answer (optionally truncated)."""
        k = self.k_build if k is None else int(k)
        if not 1 <= k <= self.k_build:
            raise ValidationError(
                f"k must be in [1, {self.k_build}], got {k}"
            )
        return KnnResult(self.distances[:, :k], self.neighbors[:, :k])

    def save(self, path) -> "Path":
        """Persist to ``.npz`` (coordinates embedded: self-contained)."""
        from pathlib import Path

        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        meta = {"k_build": int(self.k_build), "seed": int(self.seed)}
        if self.build_report is not None:
            meta["build_report"] = asdict(self.build_report)
        np.savez_compressed(
            path,
            X=self.X,
            neighbors=self.neighbors,
            distances=self.distances,
            entry_points=self.entry_points,
            adjacency=self.adjacency,
            meta=np.array(json.dumps(meta)),
        )
        return path

    @classmethod
    def load(cls, path) -> "GraphIndex":
        from pathlib import Path

        path = Path(path)
        if not path.exists():
            raise ValidationError(f"graph index file not found: {path}")
        with np.load(path) as archive:
            required = ("X", "neighbors", "distances", "entry_points", "meta")
            if any(name not in archive for name in required):
                raise ValidationError(f"{path} is not a GraphIndex archive")
            meta = json.loads(str(archive["meta"]))
            report = None
            if "build_report" in meta:
                report = GraphBuildReport(**meta["build_report"])
            return cls(
                X=archive["X"],
                neighbors=archive["neighbors"],
                distances=archive["distances"],
                entry_points=archive["entry_points"],
                adjacency=(
                    archive["adjacency"] if "adjacency" in archive else None
                ),
                k_build=int(meta["k_build"]),
                seed=int(meta["seed"]),
                build_report=report,
            )


def _reverse_sample(ids: np.ndarray, cap: int) -> np.ndarray:
    """Up to ``cap`` reverse neighbors per point, ``(n, cap)``, -1 pad.

    Deterministic: edges are scanned in stable source order. Self-loops
    (the convention's own-id slot) are dropped — they carry no reverse
    information.
    """
    n, kb = ids.shape
    src = np.repeat(np.arange(n, dtype=np.intp), kb)
    dst = ids.ravel()
    valid = (dst >= 0) & (dst != src)
    src, dst = src[valid], dst[valid]
    order = np.argsort(dst, kind="stable")
    dst_s, src_s = dst[order], src[order]
    counts = np.bincount(dst_s, minlength=n)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    take = np.minimum(counts, cap)
    total = int(take.sum())
    rows = np.repeat(np.arange(n, dtype=np.intp), take)
    within = np.arange(total, dtype=np.intp) - np.repeat(
        np.cumsum(take) - take, take
    )
    rev = np.full((n, cap), -1, dtype=np.intp)
    rev[rows, within] = src_s[np.repeat(starts, take) + within]
    return rev


def build_graph_index(
    X: np.ndarray,
    *,
    k_build: int = 16,
    rounds: int = 8,
    tol: float = 2e-3,
    init_trees: int = 2,
    leaf_size: int | None = None,
    candidates_per_point: int | None = None,
    reverse_cap: int | None = None,
    adjacency_reverse_cap: int | None = None,
    n_entry_points: int | None = None,
    seed: int = 0,
    variant: int | str = "auto",
    truth: KnnResult | None = None,
) -> GraphIndex:
    """Build a k-NN graph by tree-seeded NN-descent.

    Parameters
    ----------
    k_build:
        Graph degree (list width). Wider graphs search better and cost
        proportionally more to build; 16 is a good d<=32 default.
    rounds:
        Maximum refinement rounds after the tree initialization.
    tol:
        Convergence: stop when the fraction of points whose list changed
        in a round drops to ``tol`` or below.
    init_trees / leaf_size:
        The initialization forest (``leaf_size`` defaults to
        ``max(8 * k_build, 256)``); every leaf is one fused kernel solve
        through the plan cache.
    candidates_per_point:
        Cap on evaluated candidates per point per round (default
        ``8 * k_build``); the local-join pool is compacted and capped to
        this with the seeded build generator.
    reverse_cap:
        Reverse neighbors sampled per point (default ``k_build // 2``).
    adjacency_reverse_cap:
        Reverse edges folded into the **traversal adjacency** (default
        ``k_build``, 0 disables). The kNN lists stay the answer; search
        hops over lists ∪ reverse edges — the NSW trick that makes the
        directed kNN graph navigable.
    n_entry_points:
        Fixed beam-search entry points (default ``max(32, round(√n))``,
        capped at ``n``). Seeding them is one full-efficiency GEMM, so
        scaling with √n buys closer starts for negligible cost.
    truth:
        Optional exact all-kNN result; records per-round recall in the
        build report (calibration and benchmarks use this).
    """
    X = as_coordinate_table(X)
    check_finite(X)
    n = X.shape[0]
    k_build = check_k(k_build, n)
    if rounds < 0:
        raise ValidationError(f"rounds must be >= 0, got {rounds}")
    if not 0 <= tol < 1:
        raise ValidationError(f"tol must be in [0, 1), got {tol}")
    if n_entry_points is None:
        n_entry_points = max(32, int(round(np.sqrt(n))))
    if n_entry_points < 1:
        raise ValidationError(
            f"n_entry_points must be >= 1, got {n_entry_points}"
        )
    if adjacency_reverse_cap is None:
        adjacency_reverse_cap = k_build
    if adjacency_reverse_cap < 0:
        raise ValidationError(
            "adjacency_reverse_cap must be >= 0, got "
            f"{adjacency_reverse_cap}"
        )
    if leaf_size is None:
        leaf_size = max(8 * k_build, 256)
    leaf_size = min(leaf_size, max(n, 2))
    if leaf_size <= k_build:
        raise ValidationError(
            f"leaf_size ({leaf_size}) must exceed k_build ({k_build})"
        )
    if candidates_per_point is None:
        candidates_per_point = 8 * k_build
    if candidates_per_point < 1:
        raise ValidationError(
            f"candidates_per_point must be >= 1, got {candidates_per_point}"
        )
    if reverse_cap is None:
        reverse_cap = max(2, k_build // 2)
    if truth is not None and truth.m != n:
        raise ValidationError(
            f"truth has {truth.m} rows but X has {n} points"
        )

    registry = _get_registry()
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    with _trace.span(
        "approx.build", n=n, d=X.shape[1], k_build=k_build, rounds=rounds
    ):
        # --- initialization: forest leaf solves through the fused kernel
        from ..trees.allknn import all_nearest_neighbors

        t0 = time.perf_counter()
        if n <= leaf_size:
            # degenerate scale: one exact solve IS the graph
            from ..trees.allknn import exact_all_knn

            current = exact_all_knn(X, k_build)
        else:
            init = all_nearest_neighbors(
                X,
                k_build,
                method="rkdtree",
                leaf_size=leaf_size,
                iterations=init_trees,
                tol=0.0,
                seed=seed,
                variant=variant,
                plan_reuse=True,
            )
            current = init.result
        init_seconds = time.perf_counter() - t0
        cur_d = np.ascontiguousarray(current.distances)
        cur_i = np.ascontiguousarray(current.indices)

        X2 = squared_norms(X)
        own = np.arange(n, dtype=np.intp)[:, None]
        update_fractions: list[float] = []
        recall_curve: list[float] = []
        candidate_evals = 0
        converged = n <= leaf_size
        done_rounds = 0

        def _record_recall() -> None:
            if truth is not None:
                want = truth.indices
                got = cur_i[:, : truth.k] if truth.k <= k_build else cur_i
                hits = int(intersection_counts(want, got).sum())
                recall_curve.append(hits / (truth.m * truth.k))

        _record_recall()

        t0 = time.perf_counter()
        # NN-descent's incremental trick: a candidate pair is only worth
        # evaluating if at least one side joined a list since the last
        # round. Fresh lists start all-new; slots that survive a merge
        # go old, and converged regions stop generating candidates.
        is_new = np.ones((n, k_build), dtype=bool)
        for r in range(rounds):
            if converged:
                break
            # bidirectional adjacency: forward lists + sampled reverse
            # (reverse samples count as new — they are re-drawn each
            # round and carry the freshly-propagated edges)
            rev = _reverse_sample(cur_i, reverse_cap)
            B = np.concatenate([cur_i, rev], axis=1)
            B_new = np.concatenate(
                [is_new, np.ones(rev.shape, dtype=bool)], axis=1
            )
            hub_ok = cur_i >= 0
            safe_hub = np.where(hub_ok, cur_i, 0)
            # local join: hub's whole list if the hub is new, else only
            # the hub's new entries (old-old pairs were already tried)
            keep = hub_ok[:, :, None] & (is_new[:, :, None] | B_new[safe_hub])
            C = np.where(keep, B[safe_hub], -1).reshape(n, -1)
            C = np.concatenate([C, rev], axis=1)
            C = np.where(C == own, -1, C)
            if C.shape[1] > candidates_per_point:
                # compact valid candidates to the front (stable, after a
                # seeded column shuffle so truncation samples the join
                # rather than always keeping the first hubs) and cap
                C = C[:, rng.permutation(C.shape[1])]
                front = np.argsort(C < 0, axis=1, kind="stable")
                C = np.take_along_axis(
                    C, front[:, :candidates_per_point], axis=1
                )
            evals = int((C >= 0).sum())
            candidate_evals += evals
            with _trace.span(
                "approx.build.round", round=r, candidates=evals
            ):
                D = candidate_distances(X, X, C, X2=X2, Q2=X2)
                new_d, new_i = merge_topk(cur_d, cur_i, D, C, k_build)
            changed = float((new_i != cur_i).any(axis=1).mean())
            update_fractions.append(changed)
            is_new = ~(
                (new_i[:, :, None] == cur_i[:, None, :]).any(axis=2)
            ) & (new_i >= 0)
            cur_d, cur_i = new_d, new_i
            done_rounds = r + 1
            _record_recall()
            if registry.enabled:
                registry.inc("approx.build.rounds")
                registry.inc("approx.build.candidates", evals)
                registry.observe("approx.build.update_fraction", changed)
            if changed <= tol:
                converged = True
        refine_seconds = time.perf_counter() - t0

        entry_points = np.sort(
            rng.choice(n, size=min(n_entry_points, n), replace=False)
        ).astype(np.intp)

        # traversal adjacency: forward lists ∪ capped reverse edges,
        # deduplicated per row, self-loops dropped, valid ids compacted
        # to the front (beam search reads this, as_result() does not)
        adjacency = cur_i
        if adjacency_reverse_cap > 0:
            rev2 = _reverse_sample(cur_i, adjacency_reverse_cap)
            A = np.concatenate([cur_i, rev2], axis=1)
            A = np.where(A == own, -1, A)
            order = np.argsort(A, axis=1, kind="stable")
            As = np.take_along_axis(A, order, axis=1)
            dup = np.zeros_like(As, dtype=bool)
            dup[:, 1:] = (As[:, 1:] == As[:, :-1]) & (As[:, 1:] >= 0)
            As = np.where(dup, -1, As)
            front = np.argsort(As < 0, axis=1, kind="stable")
            adjacency = np.take_along_axis(As, front, axis=1)
            width = max(int((adjacency >= 0).sum(axis=1).max()), 1)
            adjacency = np.ascontiguousarray(adjacency[:, :width])
        report = GraphBuildReport(
            rounds=done_rounds,
            converged=converged,
            init_seconds=init_seconds,
            refine_seconds=refine_seconds,
            total_seconds=time.perf_counter() - start,
            candidate_evals=candidate_evals,
            update_fractions=update_fractions,
            recall_curve=recall_curve,
        )
        if registry.enabled:
            registry.observe("approx.build.seconds", report.total_seconds)
    return GraphIndex(
        X=X,
        neighbors=cur_i,
        distances=cur_d,
        entry_points=entry_points,
        adjacency=adjacency,
        k_build=k_build,
        seed=seed,
        build_report=report,
    )
