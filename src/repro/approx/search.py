"""Greedy beam search over a built k-NN graph, batched in lockstep.

Online queries against a :class:`~repro.approx.nndescent.GraphIndex`.
The classic best-first graph search (HNSW's layer-0 ``ef`` loop) keeps
a per-query candidate pool; each step expands the nearest unexpanded
pool entry and scores its adjacency list. Run per query in Python that
is all interpreter overhead, so this implementation advances **every
query in the batch one hop at a time**: a hop selects up to ``expand``
unexpanded frontier nodes per query, gathers all their adjacency lists
into one candidate matrix, and evaluates the whole thing with a single
blocked fused call (:func:`~repro.approx.blockeval.candidate_distances`
— the same norm-trick GEMM the gsknn kernel uses), then folds the
results into the pools with the vectorized dedup-merge. Queries whose
pools are fully expanded drop out of the gather; the hop loop ends when
every query is done (or ``max_hops``).

The hop loop runs in **float32 with int32 ids**: traversal only ranks
candidates, so half-width arithmetic halves the gather/GEMM traffic
and sort widths without touching the answer's precision. Per-query
``visited``/``expanded`` bitmaps over the reference set replace id
dedup sorts: candidates are filtered to never-scored ids before the
fused evaluation, so pools fold with a cheap partition+sort instead of
a full-width id argsort, and no id is ever evaluated twice for the
same query. The bitmaps are one byte per (query, reference) pair, so
:func:`beam_search` internally splits large query sets into row blocks
sized to a fixed state budget (``chunk_rows`` overrides): peak bitmap
memory is O(chunk x n) however many queries arrive, the per-block
results concatenate losslessly (queries never interact), and the
returned :class:`SearchStats` aggregates all blocks.

The ``rerank`` pass is TPU-KNN's approximate-then-rerank split: the
final pool is re-scored **exactly in float64** in one fused evaluation
and the top ``k`` selected from that, so the reported distances carry
full precision and any duplicate pool slots are dropped. With
``rerank=False`` the answer keeps the float32 hop metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.neighbors import KnnResult, merge_topk
from ..core.norms import squared_norms
from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..validation import as_coordinate_table, check_finite, check_k
from .blockeval import _PANEL_ELEMENTS, candidate_distances
from .nndescent import GraphIndex

__all__ = ["SearchStats", "beam_search"]

#: Default cap on per-call visited/expanded bitmap memory. The state
#: array is one byte per (query row, reference id), so query batches
#: are processed in blocks of ``_STATE_BUDGET_BYTES // (n + 1)`` rows.
_STATE_BUDGET_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class SearchStats:
    """Work accounting for one batched beam search."""

    queries: int
    hops: int
    entry_evals: int
    candidate_evals: int
    rerank_evals: int

    @property
    def total_evals(self) -> int:
        return self.entry_evals + self.candidate_evals + self.rerank_evals

    @property
    def rerank_fraction(self) -> float:
        total = self.total_evals
        return self.rerank_evals / total if total else 0.0


def _hop_distances(
    X17: np.ndarray,
    Q17: np.ndarray,
    Q2a: np.ndarray,
    C: np.ndarray,
) -> np.ndarray:
    """Blocked unmasked float32 hop evaluation.

    ``X17``/``Q17`` are the fused layouts from
    ``GraphIndex.hop_arrays``: the extra column pair (``x^2``, -0.5)
    folds the reference norm into the einsum, so a hop is exactly one
    gather and one batched GEMM. ``C`` is sentinel-padded: padding
    slots gather the virtual infinite-norm row and come back ``+inf``
    with no mask anywhere on the hot path.
    """
    a, L = C.shape
    D = np.empty((a, L), dtype=np.float32)
    d17 = X17.shape[1]
    block = max(64, _PANEL_ELEMENTS // max(L * d17, 1))
    for lo in range(0, a, block):
        hi = min(lo + block, a)
        # np.take on raveled ids hits numpy's contiguous fast path (the
        # 2-D fancy-index gather costs ~2x more), and the batched
        # matmul against (b, d, 1) runs as strided GEMV
        panel = np.take(X17, C[lo:hi].ravel(), axis=0).reshape(
            hi - lo, L, d17
        )
        dots = (panel @ Q17[lo:hi, :, None])[:, :, 0]
        Db = Q2a[lo:hi, None] - 2.0 * dots
        np.maximum(Db, 0.0, out=Db)
        D[lo:hi] = Db
    return D


def _pool_topk(
    cat_d: np.ndarray, cat_i: np.ndarray, width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Smallest ``width`` columns of each row, sorted ascending.

    The hop-path pool fold: inputs are already duplicate-free across
    pool/candidates (the visited bitmap guarantees it), so no id
    argsort — just a partition and a short sort.
    """
    if cat_d.shape[1] > width:
        part = np.argpartition(cat_d, width - 1, axis=1)[:, :width]
        cat_d = np.take_along_axis(cat_d, part, axis=1)
        cat_i = np.take_along_axis(cat_i, part, axis=1)
    order = np.argsort(cat_d, axis=1, kind="stable")
    return (
        np.take_along_axis(cat_d, order, axis=1),
        np.take_along_axis(cat_i, order, axis=1),
    )


def _search_block(
    index: GraphIndex,
    Q: np.ndarray,
    k: int,
    ef: int,
    expand: int,
    max_hops: int,
    rerank: bool,
) -> tuple[np.ndarray, np.ndarray, int, int, int, int]:
    """One bounded block of queries through the full seed/hop/select
    pipeline. Returns ``(out_d, out_i, hops, entry_evals,
    candidate_evals, rerank_evals)``; blocks are independent (queries
    never interact), so callers concatenate results losslessly."""
    n = index.n
    m = Q.shape[0]
    X17, N33 = index.hop_arrays()
    Q32 = np.ascontiguousarray(Q, dtype=np.float32)
    Q2_32 = squared_norms(Q32)
    Q17 = np.concatenate(
        [Q32, np.full((m, 1), -0.5, dtype=np.float32)], axis=1
    )
    sent = np.int32(n)  # the sentinel id (see GraphIndex.hop_arrays)

    # --- seed every pool from the index's fixed entry points: one
    # sgemm against the cached fused panel (norm column folded in)
    E32, XE17 = index.entry_arrays()
    D0 = Q2_32[:, None] - 2.0 * (Q17 @ XE17.T)
    entry_evals = m * E32.size
    pool_d, pool_i = _pool_topk(
        D0, np.broadcast_to(E32, (m, E32.size)), ef
    )
    np.maximum(pool_d, 0.0, out=pool_d)
    if pool_d.shape[1] < ef:
        pad = ef - pool_d.shape[1]
        pool_d = np.concatenate(
            [pool_d, np.full((m, pad), np.inf, dtype=pool_d.dtype)],
            axis=1,
        )
        pool_i = np.concatenate(
            [pool_i, np.full((m, pad), sent, dtype=np.int32)],
            axis=1,
        )

    # one byte of state per (query, reference id): 0 = untouched,
    # 1 = scored (never score twice), 3 = scored + adjacency
    # fetched (a pool slot is frontier until then). Only pool ids
    # are marked at seed time — rejected entry points can in
    # principle be re-scored by a hop, which is cheaper than
    # scattering the whole entry panel into the bitmap. Width n+1:
    # the sentinel column absorbs padding reads and writes.
    state = np.zeros((m, n + 1), dtype=np.uint8)
    rows = np.arange(m)
    pf = pool_i.ravel()
    pok = pf != sent
    prr = np.repeat(rows, pool_i.shape[1])
    state[prr[pok], pf[pok]] = 1
    hops = 0
    candidate_evals = 0
    done = np.zeros(m, dtype=bool)
    width = N33.shape[1]
    rep_expand = np.repeat(rows, expand)
    rep_cols = np.repeat(rows, expand * width)
    for hop in range(max_hops):
        frontier = np.isfinite(pool_d) & (
            state[rows[:, None], pool_i] < 2
        )
        has_frontier = frontier.any(axis=1)
        # the classic ef-search stop: once a query's pool is full
        # and its nearest unexpanded candidate is farther than its
        # worst pool entry, expanding cannot improve the pool
        first_col = np.argmax(frontier, axis=1)
        nearest_frontier = np.where(
            has_frontier, pool_d[rows, first_col], np.inf
        )
        done |= ~has_frontier | (nearest_frontier > pool_d[:, ef - 1])
        active = np.flatnonzero(~done)
        if active.size == 0:
            break
        hops = hop + 1
        # while every query is live (the common case in the short
        # latency-tuned hop budgets), skip the row-subset copies
        full = active.size == m
        f_act = frontier if full else frontier[active]
        # pools are sorted ascending, so a stable sort of the
        # not-frontier mask lists each row's nearest unexpanded
        # slots first
        cols = np.argsort(~f_act, axis=1, kind="stable")[:, :expand]
        chosen_ok = np.take_along_axis(f_act, cols, axis=1)
        hubs = np.take_along_axis(
            pool_i if full else pool_i[active], cols, axis=1
        )
        hubs = np.where(chosen_ok, hubs, sent)
        act_rep = rep_expand if full else np.repeat(active, expand)
        hub_flat = hubs.ravel()
        hub_ok = hub_flat != sent
        state[act_rep[hub_ok], hub_flat[hub_ok]] = 3
        # sentinel hubs gather the sentinel's self-adjacency, so no
        # masking: padding propagates through the gather untouched
        C = N33[hubs].reshape(active.size, -1)
        # drop every candidate this query has already scored
        seen = state[(rows if full else active)[:, None], C] != 0
        C = np.where(seen, sent, C)
        c_flat = C.ravel()
        c_ok = c_flat != sent
        evals = int(c_ok.sum())
        candidate_evals += evals
        arep = rep_cols if full else np.repeat(active, C.shape[1])
        state[arep[c_ok], c_flat[c_ok]] = 1
        with _trace.span(
            "approx.search.hop",
            hop=hop,
            active=int(active.size),
            candidates=evals,
        ):
            D = _hop_distances(
                X17,
                Q17 if full else Q17[active],
                Q2_32 if full else Q2_32[active],
                C,
            )
            new_d, new_i = _pool_topk(
                np.concatenate(
                    [pool_d if full else pool_d[active], D], axis=1
                ),
                np.concatenate(
                    [pool_i if full else pool_i[active], C], axis=1
                ),
                ef,
            )
        if full:
            pool_d, pool_i = new_d, new_i
        else:
            pool_d[active] = new_d
            pool_i[active] = new_i

    # --- select the answer from the pool
    rerank_evals = 0
    pool_ip = np.where(pool_i == sent, -1, pool_i).astype(np.intp)
    if rerank:
        rerank_evals = int((pool_ip >= 0).sum())
        X2 = index.squared_norms()
        Q2 = squared_norms(Q)
        D = candidate_distances(index.X, Q, pool_ip, X2=X2, Q2=Q2)
        out_d, out_i = merge_topk(
            D,
            pool_ip,
            np.full((m, 1), np.inf),
            np.full((m, 1), -1, dtype=np.intp),
            k,
        )
    else:
        # merge_topk against an empty list = dedup + truncate
        out_d, out_i = merge_topk(
            pool_d.astype(np.float64),
            pool_ip,
            np.full((m, 1), np.inf),
            np.full((m, 1), -1, dtype=np.intp),
            k,
        )
    return out_d, out_i, hops, entry_evals, candidate_evals, rerank_evals


def beam_search(
    index: GraphIndex,
    Q: np.ndarray,
    k: int,
    *,
    ef: int | None = None,
    expand: int = 4,
    max_hops: int | None = None,
    rerank: bool = True,
    validate: bool = True,
    return_stats: bool = False,
    chunk_rows: int | None = None,
) -> KnnResult | tuple[KnnResult, SearchStats]:
    """Approximate k nearest neighbors of query rows ``Q`` via the graph.

    Parameters
    ----------
    ef:
        Candidate pool width (>= k; default ``max(2 * k, 32)``). The
        recall/latency knob: the planner's calibrated operating points
        are ef values.
    expand:
        Frontier nodes expanded per query per hop. Each hop is one
        fused evaluation of ``expand * adjacency_width`` candidates per
        active query.
    max_hops:
        Hop budget (default ``max(8, 2 * log2(n))``); search usually
        terminates earlier, when every pool entry has been expanded.
    rerank:
        Re-score the final pool exactly in one fused pass before
        selecting the top k (see module docstring).
    chunk_rows:
        Query rows searched per block (each block's visited bitmap is
        ``chunk_rows x (n + 1)`` bytes). Default: sized so the bitmap
        stays within a fixed ~64 MiB budget. Blocks are independent, so
        the answer is identical at any chunking.
    """
    Q = np.atleast_2d(np.asarray(Q))
    if validate:
        Q = as_coordinate_table(Q)
        check_finite(Q)
    else:
        Q = np.asarray(Q, dtype=np.float64)
    if Q.shape[1] != index.d:
        raise ValidationError(
            f"query width {Q.shape[1]} != index dimension {index.d}"
        )
    n = index.n
    k = check_k(k, n)
    if ef is None:
        ef = max(2 * k, 32)
    ef = int(ef)
    if ef < k:
        raise ValidationError(f"ef ({ef}) must be >= k ({k})")
    if expand < 1:
        raise ValidationError(f"expand must be >= 1, got {expand}")
    if max_hops is None:
        max_hops = max(8, int(2 * np.log2(max(n, 2))))
    if max_hops < 0:
        raise ValidationError(f"max_hops must be >= 0, got {max_hops}")
    if chunk_rows is None:
        chunk_rows = max(1, _STATE_BUDGET_BYTES // (n + 1))
    elif chunk_rows < 1:
        raise ValidationError(f"chunk_rows must be >= 1, got {chunk_rows}")

    m = Q.shape[0]
    registry = _get_registry()
    n_blocks = -(-m // chunk_rows) if m else 1
    with _trace.span(
        "approx.search", queries=m, k=k, ef=ef, expand=expand,
        blocks=n_blocks,
    ):
        hops = 0
        entry_evals = candidate_evals = rerank_evals = 0
        parts_d: list[np.ndarray] = []
        parts_i: list[np.ndarray] = []
        for lo in range(0, max(m, 1), chunk_rows):
            block_d, block_i, b_hops, b_entry, b_cand, b_rerank = (
                _search_block(
                    index, Q[lo : lo + chunk_rows], k, ef, expand,
                    max_hops, rerank,
                )
            )
            parts_d.append(block_d)
            parts_i.append(block_i)
            # evals sum across blocks; hops is the longest chain any
            # query walked, which max preserves
            hops = max(hops, b_hops)
            entry_evals += b_entry
            candidate_evals += b_cand
            rerank_evals += b_rerank
        out_d = parts_d[0] if len(parts_d) == 1 else np.concatenate(parts_d)
        out_i = parts_i[0] if len(parts_i) == 1 else np.concatenate(parts_i)

        stats = SearchStats(
            queries=m,
            hops=hops,
            entry_evals=entry_evals,
            candidate_evals=candidate_evals,
            rerank_evals=rerank_evals,
        )
        if registry.enabled:
            registry.inc("approx.search.queries", m)
            registry.inc("approx.search.candidates", stats.candidate_evals)
            registry.observe("approx.search.hops", stats.hops)
            registry.observe("approx.search.beam_width", ef)
            registry.gauge("approx.search.rerank_fraction").set(
                stats.rerank_fraction
            )
    result = KnnResult(out_d, out_i)
    if return_stats:
        return result, stats
    return result
