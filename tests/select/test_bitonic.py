"""Unit and property tests for the bitonic networks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.select.bitonic import (
    bitonic_merge_rows,
    bitonic_merge_select_rows,
    bitonic_sort_rows,
)


class TestBitonicSort:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 7, 8, 16, 33])
    def test_sorts_each_row(self, rng, width):
        values = rng.random((5, width))
        out_vals, out_ids = bitonic_sort_rows(values)
        np.testing.assert_allclose(out_vals, np.sort(values, axis=1))
        # ids track their values
        rows = np.arange(5)[:, None]
        np.testing.assert_allclose(values[rows, out_ids], out_vals)

    def test_custom_ids(self, rng):
        values = rng.random((2, 4))
        ids = np.array([[10, 11, 12, 13], [20, 21, 22, 23]])
        _, out_ids = bitonic_sort_rows(values, ids)
        order = np.argsort(values, axis=1)
        np.testing.assert_array_equal(out_ids, np.take_along_axis(ids, order, 1))

    def test_duplicates(self):
        values = np.array([[2.0, 1.0, 2.0, 1.0]])
        out_vals, _ = bitonic_sort_rows(values)
        np.testing.assert_allclose(out_vals, [[1.0, 1.0, 2.0, 2.0]])

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            bitonic_sort_rows(np.ones(4))
        with pytest.raises(ValidationError):
            bitonic_sort_rows(np.ones((2, 3)), np.ones((2, 4), dtype=int))


class TestBitonicMerge:
    def test_merges_sorted_lists(self, rng):
        a = np.sort(rng.random((3, 4)), axis=1)
        b = np.sort(rng.random((3, 4)), axis=1)
        a_ids = np.arange(4)[None, :].repeat(3, 0)
        b_ids = np.arange(4, 8)[None, :].repeat(3, 0)
        vals, ids = bitonic_merge_rows(a, a_ids, b, b_ids, 4)
        want = np.sort(np.concatenate([a, b], axis=1), axis=1)[:, :4]
        np.testing.assert_allclose(vals, want)

    def test_k_spans_both_lists(self, rng):
        a = np.sort(rng.random((2, 3)), axis=1)
        b = np.sort(rng.random((2, 3)), axis=1) + 10
        vals, _ = bitonic_merge_rows(
            a, np.zeros((2, 3), int), b, np.ones((2, 3), int), 5
        )
        want = np.sort(np.concatenate([a, b], 1), 1)[:, :5]
        np.testing.assert_allclose(vals, want)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            bitonic_merge_rows(
                np.ones((2, 3)), np.ones((2, 3), int),
                np.ones((2, 4)), np.ones((2, 4), int), 2,
            )
        with pytest.raises(ValidationError):
            bitonic_merge_rows(
                np.ones((2, 3)), np.ones((2, 3), int),
                np.ones((2, 3)), np.ones((2, 3), int), 0,
            )


class TestBitonicMergeSelect:
    @pytest.mark.parametrize("n,k", [(8, 4), (10, 3), (64, 16), (7, 7), (5, 1)])
    def test_matches_partition(self, rng, n, k):
        values = rng.random((6, n))
        vals, ids = bitonic_merge_select_rows(values, k)
        want = np.sort(values, axis=1)[:, :k]
        np.testing.assert_allclose(vals, want)
        rows = np.arange(6)[:, None]
        np.testing.assert_allclose(values[rows, ids], vals)

    def test_agrees_with_scalar_merge_select(self, rng):
        from repro.select import merge_select

        values = rng.random(40)
        batched_vals, _ = bitonic_merge_select_rows(values[None, :], 6)
        scalar_vals, _ = merge_select(values, 6)
        np.testing.assert_allclose(batched_vals[0], scalar_vals)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            bitonic_merge_select_rows(rng.random((2, 4)), 5)
        with pytest.raises(ValidationError):
            bitonic_merge_select_rows(rng.random(4), 2)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_bitonic_sort_property(m, width, seed):
    values = np.random.default_rng(seed).random((m, width))
    out_vals, _ = bitonic_sort_rows(values)
    np.testing.assert_allclose(out_vals, np.sort(values, axis=1))


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_bitonic_merge_select_property(m, n, k, seed):
    if k > n:
        k = n
    values = np.random.default_rng(seed).random((m, n))
    vals, _ = bitonic_merge_select_rows(values, k)
    np.testing.assert_allclose(vals, np.sort(values, axis=1)[:, :k])
