"""Fault injection at window granularity: retries absorb faults,
exhausted retries surface them, ambient plans are picked up."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InjectedFault
from repro.resilience.faults import FAULT_PLAN_ENV, FaultPlan
from repro.serve import KnnQueryService, ServeConfig
from repro.serve.service import _WINDOW_ATTEMPTS


def _find_seed(crash: float, pattern) -> int:
    """A seed whose deterministic dice match ``pattern(decisions)`` for
    window 1 — probed, not hardcoded, so the tests don't depend on the
    hash function's exact output."""
    for seed in range(5000):
        plan = FaultPlan(seed=seed, crash=crash)
        decisions = [
            plan.decide("serve.window", 1, attempt)
            for attempt in range(_WINDOW_ATTEMPTS)
        ]
        if pattern(decisions):
            return seed
    raise AssertionError("no matching seed in probe range")  # pragma: no cover


@pytest.fixture
def recover_seed() -> int:
    # crash on attempt 0, clean on attempt 1: one retry saves the window
    return _find_seed(
        0.5, lambda d: d[0] == "crash" and d[1] is None
    )


@pytest.fixture
def exhaust_seed() -> int:
    # crash on every attempt: bounded retry must give up and surface it
    return _find_seed(0.97, lambda d: all(x == "crash" for x in d))


class TestWindowRetry:
    def test_faulted_window_retries_and_serves(self, table, recover_seed, metrics):
        plan = FaultPlan(seed=recover_seed, crash=0.5)
        with KnnQueryService(table, fault_plan=plan) as svc:
            res = svc.submit([3], 2).result(timeout=30)
        assert res.m == 1 and res.k == 2
        counters = metrics.snapshot()["counters"]
        assert counters.get("serve.window_retries", 0) >= 1
        assert counters.get("resilience.faults_injected.crash", 0) >= 1

    def test_exhausted_retries_fail_requests_explicitly(
        self, table, exhaust_seed, metrics
    ):
        plan = FaultPlan(seed=exhaust_seed, crash=0.97)
        with KnnQueryService(table, fault_plan=plan) as svc:
            handle = svc.submit([3], 2, tenant="victim")
            with pytest.raises(InjectedFault):
                handle.result(timeout=30)
        counters = metrics.snapshot()["counters"]
        assert counters.get("serve.batch_failures") == 1
        assert counters.get('serve.failed{tenant="victim"}') == 1

    def test_row_requests_ride_the_same_retry_path(self, table, recover_seed, rng):
        plan = FaultPlan(seed=recover_seed, crash=0.5)
        with KnnQueryService(table, fault_plan=plan) as svc:
            res = svc.submit_rows(rng.random((2, table.shape[1])), 3).result(
                timeout=30
            )
        assert res.m == 2

    def test_slow_plan_costs_latency_not_results(self, table):
        plan = FaultPlan(seed=1, slow=1.0, slow_seconds=0.01)
        with KnnQueryService(table, fault_plan=plan) as svc:
            results = [svc.submit([i], 2) for i in range(5)]
            for h in results:
                assert h.result(timeout=30).m == 1


class TestPlanWiring:
    def test_spec_string_accepted(self, table):
        svc = KnnQueryService(table, fault_plan="seed=3,slow=1.0,slow_ms=1")
        assert svc._fault_plan is not None
        assert svc._fault_plan.seed == 3

    def test_ambient_env_plan_picked_up(self, table, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=9,crash=0.25")
        svc = KnnQueryService(table)
        assert svc._fault_plan is not None
        assert svc._fault_plan.seed == 9

    def test_explicit_plan_beats_env(self, table, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=9,crash=0.25")
        svc = KnnQueryService(table, fault_plan="seed=4,slow=0.5")
        assert svc._fault_plan.seed == 4

    def test_inactive_plan_disables_injection(self, table):
        svc = KnnQueryService(table, fault_plan=FaultPlan(seed=5))
        assert svc._fault_plan is None

    def test_no_plan_no_env_is_clean(self, table):
        # conftest's autouse fixture guarantees the env var is absent
        svc = KnnQueryService(table)
        assert svc._fault_plan is None
