"""Contiguous work partitioning shared by every parallel driver.

Three modules used to carry private copies of the same two pieces of
arithmetic — how many workers to actually start, and how to split a
contiguous range of rows between them:

* ``parallel/data_parallel.py`` had ``_query_chunks`` (near-equal
  chunks, also reused for the reference side);
* ``gemm/parallel.py`` had ``_row_chunks`` (whole-``m_c``-block chunks)
  and capped its pool at ``min(p, len(chunks))`` while the data-parallel
  driver passed ``max_workers=p`` even with fewer chunks;
* ``parallel/scheduler.py`` sized its pool straight off
  ``schedule.n_processors``.

This module is the single home for both:
:func:`resolve_workers` turns a requested worker count (or ``"auto"``)
into the number of workers worth starting, and :func:`contiguous_chunks`
/ :func:`block_aligned_chunks` produce ``(start, size)`` partitions with
the invariants the property tests pin — full coverage of ``[0, total)``,
no empty chunks, near-equal (or whole-block) sizes.
"""

from __future__ import annotations

import os

from ..errors import ValidationError

__all__ = ["resolve_workers", "contiguous_chunks", "block_aligned_chunks"]


def resolve_workers(p: int | str, n_chunks: int | None = None) -> int:
    """Number of workers to actually start for ``n_chunks`` work items.

    ``p`` is the requested worker count, or ``"auto"`` for
    ``os.cpu_count()``. The result is clamped to ``n_chunks`` when given
    (a pool larger than its work list only burns thread/process startup)
    and is always >= 1.
    """
    if isinstance(p, str):
        if p != "auto":
            raise ValidationError(
                f"worker count must be a positive int or 'auto', got {p!r}"
            )
        p = os.cpu_count() or 1
    if not isinstance(p, int) or isinstance(p, bool) or p < 1:
        raise ValidationError(
            f"worker count must be a positive int or 'auto', got {p!r}"
        )
    if n_chunks is not None:
        if n_chunks < 1:
            raise ValidationError(
                f"n_chunks must be >= 1 when given, got {n_chunks}"
            )
        p = min(p, n_chunks)
    return p


def contiguous_chunks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into <= ``parts`` near-equal ``(start, size)`` runs.

    The dynamic-``m_c`` load balancing of §2.5: sizes differ by at most
    one, chunks are contiguous and in order, empty chunks are never
    emitted (so fewer than ``parts`` chunks come back when
    ``total < parts``).
    """
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    base, extra = divmod(total, parts)
    chunks: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append((start, size))
        start += size
    return chunks


def block_aligned_chunks(
    total: int, parts: int, block: int
) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into <= ``parts`` chunks of whole ``block`` units.

    The GEMM driver's variant: every worker gets a whole number of
    ``m_c`` blocks (only the final chunk may end ragged), so block
    boundaries — and therefore packing layouts — are identical to the
    serial loop nest.
    """
    if total < 0:
        raise ValidationError(f"total must be >= 0, got {total}")
    if parts < 1 or block < 1:
        raise ValidationError(
            f"need parts >= 1 and block >= 1, got {parts}, {block}"
        )
    blocks = -(-total // block)
    per_worker = -(-blocks // parts) if blocks else 0
    chunks: list[tuple[int, int]] = []
    start = 0
    while start < total:
        size = min(per_worker * block, total - start)
        chunks.append((start, size))
        start += size
    return chunks
