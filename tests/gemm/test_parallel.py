"""Tests for the data-parallel blocked GEMM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import BlockingParams
from repro.errors import ValidationError
from repro.gemm.parallel import parallel_blocked_gemm
from repro.parallel.chunking import block_aligned_chunks

BLK = BlockingParams(m_r=2, n_r=2, d_c=4, m_c=4, n_c=8)


class TestRowChunks:
    """The GEMM driver's chunking now lives in parallel.chunking."""

    def test_whole_mc_blocks_per_worker(self):
        chunks = block_aligned_chunks(20, 3, 4)
        for start, size in chunks[:-1]:
            assert start % 4 == 0
            assert size % 4 == 0
        covered = sum(size for _, size in chunks)
        assert covered == 20

    def test_single_worker(self):
        assert block_aligned_chunks(10, 1, 4) == [(0, 10)]

    def test_more_workers_than_blocks(self):
        chunks = block_aligned_chunks(8, 16, 4)
        assert len(chunks) == 2


class TestParallelBlockedGemm:
    @pytest.mark.parametrize("p", [1, 2, 3, 5])
    @pytest.mark.parametrize("m,n,d", [(9, 7, 5), (16, 16, 8), (3, 4, 2)])
    def test_matches_blas(self, rng, p, m, n, d):
        A = rng.random((m, d))
        B = rng.random((n, d))
        got = parallel_blocked_gemm(A, B, p=p, blocking=BLK)
        np.testing.assert_allclose(got, A @ B.T, atol=1e-12)

    def test_matches_serial_bitwise(self, rng):
        from repro.gemm import BlockedGemm

        A, B = rng.random((12, 6)), rng.random((10, 6))
        serial = BlockedGemm(BLK).multiply_nt(A, B)
        parallel = parallel_blocked_gemm(A, B, p=3, blocking=BLK)
        np.testing.assert_array_equal(serial, parallel)

    def test_validation(self, rng):
        with pytest.raises(ValidationError):
            parallel_blocked_gemm(rng.random((2, 2)), rng.random((2, 2)), p=0)
        with pytest.raises(ValidationError):
            parallel_blocked_gemm(rng.random((2, 3)), rng.random((2, 4)), p=2)
