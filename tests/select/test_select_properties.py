"""Property-based tests: all selection algorithms agree with sorting."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.select import (
    BatchedNeighborLists,
    BinaryMaxHeap,
    DHeap,
    heap_select_smallest,
    merge_select,
    quickselect_smallest,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@st.composite
def values_and_k(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    values = draw(
        arrays(np.float64, shape=n, elements=finite_floats)
    )
    k = draw(st.integers(min_value=1, max_value=n))
    return values, k


@given(values_and_k())
@settings(max_examples=80, deadline=None)
def test_heap_select_matches_sort(data):
    values, k = data
    got, _ = heap_select_smallest(values, k)
    np.testing.assert_allclose(got, np.sort(values)[:k])


@given(values_and_k(), st.sampled_from([3, 4, 8]))
@settings(max_examples=60, deadline=None)
def test_dheap_select_matches_sort(data, arity):
    values, k = data
    got, _ = heap_select_smallest(values, k, arity=arity)
    np.testing.assert_allclose(got, np.sort(values)[:k])


@given(values_and_k())
@settings(max_examples=80, deadline=None)
def test_quickselect_matches_sort(data):
    values, k = data
    got, _ = quickselect_smallest(values, k)
    np.testing.assert_allclose(got, np.sort(values)[:k])


@given(values_and_k())
@settings(max_examples=80, deadline=None)
def test_merge_select_matches_sort(data):
    values, k = data
    got, _ = merge_select(values, k)
    np.testing.assert_allclose(got, np.sort(values)[:k])


@given(
    st.integers(min_value=1, max_value=8),   # k
    st.lists(                                 # a stream of update batches
        st.lists(finite_floats, min_size=1, max_size=20),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=60, deadline=None)
def test_heap_invariant_under_arbitrary_streams(k, batches):
    heap = BinaryMaxHeap(k)
    dheap = DHeap(k, arity=4)
    everything = []
    ident = 0
    for batch in batches:
        for value in batch:
            heap.update(value, ident)
            dheap.update(value, ident)
            everything.append(value)
            ident += 1
        assert heap.is_valid()
        assert dheap.is_valid()
    want = np.sort(np.array(everything))[:k]
    got = heap.sorted_pairs()[0][: len(want)]
    np.testing.assert_allclose(got, want)
    np.testing.assert_allclose(dheap.sorted_pairs()[0][: len(want)], want)


@given(
    st.integers(min_value=1, max_value=5),    # m
    st.integers(min_value=1, max_value=6),    # k
    st.integers(min_value=1, max_value=40),   # n
    st.integers(min_value=1, max_value=11),   # block width
    st.randoms(use_true_random=False),
)
@settings(max_examples=50, deadline=None)
def test_batched_lists_match_heaps_for_any_blocking(m, k, n, width, random):
    rng = np.random.default_rng(random.randint(0, 2**31))
    values = rng.random((m, n))
    lists = BatchedNeighborLists(m, k)
    heaps = [BinaryMaxHeap(k) for _ in range(m)]
    for start in range(0, n, width):
        block = values[:, start : start + width]
        ids = np.arange(start, start + block.shape[1])
        lists.update(0, block, ids)
        for i in range(m):
            heaps[i].update_many(block[i], ids)
    dist, _ = lists.sorted()
    for i in range(m):
        np.testing.assert_allclose(dist[i], heaps[i].sorted_pairs()[0])
