"""Unit tests for shared input validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.validation import (
    as_coordinate_table,
    as_index_array,
    check_finite,
    check_k,
)


class TestAsCoordinateTable:
    def test_converts_dtype(self):
        out = as_coordinate_table(np.ones((2, 3), dtype=np.float32))
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_accepts_integer_data(self):
        out = as_coordinate_table(np.ones((2, 2), dtype=np.int64))
        assert out.dtype == np.float64

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_coordinate_table(np.array([["a", "b"]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            as_coordinate_table(np.ones(4))
        with pytest.raises(ValidationError):
            as_coordinate_table(np.ones((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            as_coordinate_table(np.empty((0, 4)))

    def test_lists_accepted(self):
        out = as_coordinate_table([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)


class TestAsIndexArray:
    def test_basic(self):
        out = as_index_array([0, 2, 1], 3)
        assert out.dtype == np.intp

    def test_float_whole_numbers_accepted(self):
        out = as_index_array(np.array([0.0, 1.0]), 3)
        np.testing.assert_array_equal(out, [0, 1])

    def test_float_fractions_rejected(self):
        with pytest.raises(ValidationError):
            as_index_array(np.array([0.5]), 3)

    def test_out_of_range(self):
        with pytest.raises(ValidationError):
            as_index_array([3], 3)
        with pytest.raises(ValidationError):
            as_index_array([-1], 3)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            as_index_array([], 3)

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            as_index_array(np.zeros((2, 2), dtype=int), 5)

    def test_duplicates_allowed(self):
        out = as_index_array([1, 1, 1], 3)
        assert out.size == 3


class TestFloatIndexBoundaries:
    """float64 represents every integer only below 2**53; beyond that
    the old coerce-and-compare check passed spuriously (a lossy value
    round-trips to its own lossy self). The guard must reject by
    magnitude, not by round-trip."""

    def test_exact_range_boundary_rejected(self):
        # 2**53 is representable but is where exactness ends: 2**53 + 1
        # silently collapses onto it, so the whole region is rejected
        with pytest.raises(ValidationError) as excinfo:
            as_index_array(np.array([2.0**53]), 2**60)
        assert "2**53" in str(excinfo.value)

    def test_beyond_boundary_rejected(self):
        with pytest.raises(ValidationError):
            as_index_array(np.array([2.0**53 + 2.0]), 2**60)
        with pytest.raises(ValidationError):
            as_index_array(np.array([1e300]), 2**60)

    def test_just_under_boundary_accepted(self):
        out = as_index_array(np.array([float(2**53 - 1)]), 2**53)
        assert out[0] == 2**53 - 1

    def test_float32_boundary_is_2_to_24(self):
        with pytest.raises(ValidationError) as excinfo:
            as_index_array(np.array([2.0**24], dtype=np.float32), 2**30)
        assert "2**24" in str(excinfo.value)
        out = as_index_array(
            np.array([2.0**24 - 1], dtype=np.float32), 2**30
        )
        assert out[0] == 2**24 - 1

    def test_nan_and_inf_rejected(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValidationError) as excinfo:
                as_index_array(np.array([bad]), 10)
            assert "non-finite" in str(excinfo.value)

    def test_negative_whole_floats_flow_to_range_check(self):
        with pytest.raises(ValidationError) as excinfo:
            as_index_array(np.array([-1.0]), 10)
        assert "negative" in str(excinfo.value)


class TestCheckK:
    def test_valid(self):
        assert check_k(3, 10) == 3
        assert check_k(10, 10) == 10

    def test_invalid(self):
        with pytest.raises(ValidationError):
            check_k(0, 10)
        with pytest.raises(ValidationError):
            check_k(11, 10)


class TestCheckFinite:
    def test_passes_finite(self):
        check_finite(np.ones((2, 2)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_finite(np.array([[np.nan]]))
        with pytest.raises(ValidationError):
            check_finite(np.array([[np.inf]]))
