"""Locality-sensitive hashing partitioner for approximate all-kNN.

The second solver family GSKNN was integrated with (§3). Points are
hashed with the classic p-stable random-projection scheme: a hash table
draws ``n_projections`` random directions ``w`` and offsets ``b``, and
``h(x) = floor((w . x + b) / width)`` per projection; the tuple of
quantized projections is the bucket key. Points sharing a bucket are
probable near neighbors, so one exact kNN kernel runs per bucket.
Iterating over independently drawn tables plays the same role as
iterating randomized trees.

Oversized buckets (dense regions) are split into chunks bounded by
``max_bucket`` so kernel problem sizes stay controlled; undersized
buckets (< 2 points) contribute nothing and are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = ["LSHSolver"]


@dataclass
class LSHSolver:
    """Random-projection LSH grouping for the all-kNN driver."""

    n_projections: int = 4
    bucket_width: float | None = None  # None: scaled from data spread
    n_tables: int = 8
    max_bucket: int = 4096
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.n_projections < 1:
            raise ValidationError("n_projections must be >= 1")
        if self.n_tables < 1:
            raise ValidationError("n_tables must be >= 1")
        if self.max_bucket < 2:
            raise ValidationError("max_bucket must be >= 2")
        if self.bucket_width is not None and self.bucket_width <= 0:
            raise ValidationError("bucket_width must be positive")

    def _width(self, X: np.ndarray) -> float:
        if self.bucket_width is not None:
            return self.bucket_width
        # Heuristic: a projection of the data spans ~||spread||; aim for
        # a handful of populated buckets per projection. The sampling is
        # derived directly from the solver seed (its own generator, not
        # a per-table one), so the width is a pure function of
        # (X, seed): every table quantizes on the same grid pitch, and
        # table t's projections no longer depend on how many draws the
        # width estimate consumed.
        rng = np.random.default_rng(self.seed)
        sample = X[rng.choice(X.shape[0], size=min(256, X.shape[0]), replace=False)]
        w = rng.normal(size=X.shape[1])
        w /= np.linalg.norm(w)
        proj = sample @ w
        spread = float(proj.max() - proj.min())
        return max(spread / 4.0, 1e-12)

    def buckets(self, X: np.ndarray):
        """Yield per-table lists of index arrays (the kernel groups)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] == 0:
            raise ValidationError(f"X must be a non-empty (N, d) array, got {X.shape}")
        width = self._width(X)
        root = np.random.default_rng(self.seed)
        for _ in range(self.n_tables):
            rng = np.random.default_rng(int(root.integers(0, 2**63 - 1)))
            W = rng.normal(size=(X.shape[1], self.n_projections))
            W /= np.linalg.norm(W, axis=0, keepdims=True)
            b = rng.uniform(0, width, size=self.n_projections)
            keys = np.floor((X @ W + b) / width).astype(np.int64)
            yield self._group(keys, rng)

    def _group(
        self, keys: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Group row indices by hash tuple, splitting oversized buckets."""
        # lexicographic sort on the key tuples, then slice runs
        order = np.lexsort(keys.T[::-1])
        sorted_keys = keys[order]
        change = np.any(np.diff(sorted_keys, axis=0) != 0, axis=1)
        boundaries = np.concatenate(
            [[0], np.flatnonzero(change) + 1, [keys.shape[0]]]
        )
        groups: list[np.ndarray] = []
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            members = order[lo:hi].astype(np.intp)
            if members.size < 2:
                continue
            if members.size > self.max_bucket:
                members = rng.permutation(members)
                for start in range(0, members.size, self.max_bucket):
                    chunk = members[start : start + self.max_bucket]
                    if chunk.size >= 2:
                        groups.append(np.sort(chunk))
            else:
                groups.append(members)
        return groups
