"""Variant-switching thresholds in (d, k) space (paper §2.4 and Figure 5).

An exhaustive tuning table over all (d, k) would be expensive to build;
the model instead predicts where Var#6 starts beating Var#1, producing a
small region for fine tuning. Figure 5 plots this: the modeled Var#1 and
Var#6 GFLOPS curves cross at some k*, close to the empirically measured
crossing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BlockingParams, IVY_BRIDGE_BLOCKING
from ..errors import ValidationError
from ..machine.params import IVY_BRIDGE, MachineParams
from .perf_model import PerformanceModel

__all__ = ["predict_variant_threshold", "threshold_table", "ThresholdPoint"]


@dataclass(frozen=True)
class ThresholdPoint:
    """The predicted switch point for one dimension value."""

    d: int
    k_threshold: int | None  # None: Var#1 wins over the whole k range


def predict_variant_threshold(
    m: int,
    n: int,
    d: int,
    *,
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    k_max: int | None = None,
) -> int | None:
    """Smallest k at which Var#6 is predicted no slower than Var#1.

    Scans k = 1..k_max (default n); returns None when Var#1 wins
    everywhere (the model predicts no crossover below k_max).
    """
    if k_max is None:
        k_max = n
    if k_max < 1 or k_max > n:
        raise ValidationError(f"k_max must be in [1, {n}], got {k_max}")
    model = PerformanceModel(machine, blocking)
    # Exponential-then-binary search: the time difference
    # Var#1(k) - Var#6(k) is monotone increasing in k (the heap-latency
    # term grows with k at tau_l for Var#1 vs tau_b for Var#6's 4-heap,
    # while Var#6's mn store is k-independent).
    def var6_wins(k: int) -> bool:
        return (
            model.predict("var6", m, n, d, k).seconds
            <= model.predict("var1", m, n, d, k).seconds
        )

    if not var6_wins(k_max):
        return None
    lo, hi = 1, k_max
    while lo < hi:
        mid = (lo + hi) // 2
        if var6_wins(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def threshold_table(
    m: int,
    n: int,
    dims: list[int],
    *,
    machine: MachineParams = IVY_BRIDGE,
    blocking: BlockingParams = IVY_BRIDGE_BLOCKING,
    k_max: int | None = None,
) -> list[ThresholdPoint]:
    """The (d, k) switching surface sampled at ``dims``."""
    return [
        ThresholdPoint(
            d,
            predict_variant_threshold(
                m, n, d, machine=machine, blocking=blocking, k_max=k_max
            ),
        )
        for d in dims
    ]
