"""Data-parallel GSKNN: parallelizing inside one kernel (paper §2.5).

The paper parallelizes the 4th loop (query blocks): every ``m_c`` block
of queries goes to one core, each core packs a private ``Q_c`` into its
private L2 while the shared ``R_c`` lives in the shared L3. That
decomposition is race-free because a query's neighbor list is touched
by exactly one core.

Parallelizing the *reference* side (3rd/6th loops) would race on the
shared neighbor lists; the paper's footnote resolves it with
per-thread private heaps merged afterwards. Both schemes are
implemented, the second mainly to demonstrate (and test) the merge
resolution.

Threads, not processes: the distance blocks are BLAS calls that release
the GIL, so query blocks genuinely overlap on multicore hosts, and on a
single-core host the decomposition still produces bit-identical
results.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..config import iter_blocks
from ..errors import ValidationError
from ..core.gsknn import gsknn
from ..core.neighbors import KnnResult, merge_neighbor_lists
from ..core.norms import Norm

__all__ = ["gsknn_data_parallel", "gsknn_reference_parallel"]


def _query_chunks(m: int, p: int) -> list[tuple[int, int]]:
    """Split ``m`` queries into ``p`` near-equal contiguous chunks.

    This is the dynamic-``m_c`` load balancing of §2.5: instead of fixed
    ``m_c`` blocks cycled over cores (imbalanced when m is not a
    multiple of m_c * p), chunk sizes are derived from p and m.
    """
    base = m // p
    extra = m % p
    chunks = []
    start = 0
    for i in range(p):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append((start, size))
        start += size
    return chunks


def gsknn_data_parallel(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    p: int = 2,
    norm: str | float | Norm = "l2",
    variant: int | str = "auto",
    block_m: int = 1024,
    block_n: int = 2048,
) -> KnnResult:
    """4th-loop (query-side) parallel GSKNN over ``p`` workers.

    Results are identical to the serial kernel — queries are
    partitioned, never shared.
    """
    if p < 1:
        raise ValidationError(f"need p >= 1, got {p}")
    q_idx = np.asarray(q_idx, dtype=np.intp)
    if p == 1 or q_idx.size <= p:
        return gsknn(
            X, q_idx, np.asarray(r_idx), k, norm=norm, variant=variant,
            block_m=block_m, block_n=block_n,
        )

    chunks = _query_chunks(q_idx.size, p)

    def worker(chunk: tuple[int, int]) -> tuple[int, KnnResult]:
        start, size = chunk
        res = gsknn(
            X,
            q_idx[start : start + size],
            r_idx,
            k,
            norm=norm,
            variant=variant,
            block_m=block_m,
            block_n=block_n,
        )
        return start, res

    m = q_idx.size
    dist = np.empty((m, k), dtype=np.float64)
    idx = np.empty((m, k), dtype=np.intp)
    with ThreadPoolExecutor(max_workers=p) as pool:
        for start, res in pool.map(worker, chunks):
            dist[start : start + res.m] = res.distances
            idx[start : start + res.m] = res.indices
    return KnnResult(dist, idx)


def gsknn_reference_parallel(
    X: np.ndarray,
    q_idx: np.ndarray,
    r_idx: np.ndarray,
    k: int,
    *,
    p: int = 2,
    norm: str | float | Norm = "l2",
    block_m: int = 1024,
    block_n: int = 2048,
) -> KnnResult:
    """Reference-side parallel GSKNN with private per-worker lists.

    Each worker processes a slice of the *references* for all queries,
    building private neighbor lists; the partial lists are then merged
    (the paper's footnote-5 race resolution for Xeon Phi's 3rd-loop
    parallelism). Exactness is preserved because min-k is associative
    under the dedup-merge.
    """
    if p < 1:
        raise ValidationError(f"need p >= 1, got {p}")
    r_idx = np.asarray(r_idx, dtype=np.intp)
    if k > r_idx.size:
        raise ValidationError(f"k={k} exceeds n={r_idx.size}")
    if p == 1 or r_idx.size < p * k:
        return gsknn(
            X, q_idx, r_idx, k, norm=norm, block_m=block_m, block_n=block_n
        )

    chunks = _query_chunks(r_idx.size, p)  # same chunking math, n side

    def worker(chunk: tuple[int, int]) -> KnnResult:
        start, size = chunk
        return gsknn(
            X,
            q_idx,
            r_idx[start : start + size],
            min(k, size),
            norm=norm,
            block_m=block_m,
            block_n=block_n,
        )

    with ThreadPoolExecutor(max_workers=p) as pool:
        partials = list(pool.map(worker, chunks))

    # Pad any short partial lists (chunk smaller than k) to width k, then
    # fold them together with the dedup merge.
    def widen(res: KnnResult) -> KnnResult:
        if res.k == k:
            return res
        pad = k - res.k
        dist = np.pad(res.distances, ((0, 0), (0, pad)), constant_values=np.inf)
        idx = np.pad(res.indices, ((0, 0), (0, pad)), constant_values=-1)
        return KnnResult(dist, idx)

    merged = widen(partials[0])
    for part in partials[1:]:
        merged = merge_neighbor_lists(merged, widen(part))
    return merged
