"""Pending-request bookkeeping: per-tenant queues with fair dequeue.

The admission queue is the one shared structure between client threads
(many, calling ``submit``) and the dispatcher (one, draining windows),
so it is deliberately dumb: plain deques under one lock, no internal
condition variable (the service owns the wakeup signalling), and a
weighted-round-robin ``take`` that is the entire fairness mechanism.

WRR rather than a single FIFO because a single FIFO lets one chatty
tenant occupy every slot of every coalescing window: whoever submits
fastest is served exclusively, and everyone else's goodput goes to
zero. Round-robin over tenant queues — each tenant taking up to
``weight`` requests per cycle — bounds any tenant's share of a window
to roughly ``weight / total_active_weight`` while letting an idle
tenant's share flow to the busy ones (work-conserving: a window never
leaves with fewer requests than it could carry).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["PendingRequest", "FairQueue"]


@dataclass
class PendingRequest:
    """One submitted query, queued between ``submit`` and its fused solve.

    ``ctx`` carries the request id, tenant, and (optional) deadline —
    the same :class:`~repro.obs.context.RequestContext` that tags every
    span and metric the request's share of the solve produces. Exactly
    one of ``q_idx`` (table indices) or ``Q`` (literal query rows) is
    set; the two kinds fuse into separate solves of the same window.
    """

    ctx: Any
    k: int
    future: Any
    q_idx: np.ndarray | None = None
    Q: np.ndarray | None = None
    #: the request's recall target (None = exact) and, when the planner
    #: routed it to the graph tier, the PlanDecision that did so
    recall_target: float | None = None
    decision: Any = None
    enqueued_at: float = field(default_factory=time.perf_counter)

    @property
    def tenant(self) -> str:
        return self.ctx.tenant

    @property
    def is_rows(self) -> bool:
        return self.Q is not None

    @property
    def is_approx(self) -> bool:
        return self.decision is not None and self.decision.method == "graph"

    @property
    def rows(self) -> int:
        if self.Q is not None:
            return int(self.Q.shape[0])
        return int(self.q_idx.size)

    def queue_wait(self) -> float:
        return time.perf_counter() - self.enqueued_at


class FairQueue:
    """Per-tenant FIFO queues with weighted-round-robin batch dequeue.

    Thread-safe; all methods take the internal lock. The round-robin
    cursor persists across ``take`` calls so fairness holds across
    windows, not just within one: the tenant after the last one served
    starts the next cycle.
    """

    def __init__(self, weight_of: Callable[[str], int]) -> None:
        self._weight_of = weight_of
        self._lock = threading.Lock()
        self._queues: "OrderedDict[str, deque[PendingRequest]]" = OrderedDict()
        self._depth = 0
        self._cursor = 0  # index into the tenant ordering, persists

    def __len__(self) -> int:
        with self._lock:
            return self._depth

    @property
    def depth(self) -> int:
        return len(self)

    def push(self, req: PendingRequest) -> int:
        """Append; returns the new total depth. Admission (the bound
        check) is the service's job — the queue never rejects."""
        with self._lock:
            queue = self._queues.get(req.tenant)
            if queue is None:
                queue = self._queues[req.tenant] = deque()
            queue.append(req)
            self._depth += 1
            return self._depth

    def take(self, max_items: int, max_rows: int) -> list[PendingRequest]:
        """Dequeue up to ``max_items`` requests / ``max_rows`` query rows,
        weighted-round-robin across tenants.

        Each cycle visits every tenant (starting at the persistent
        cursor) and takes up to ``weight(tenant)`` of its queued
        requests; cycles repeat until the caps are hit or every queue is
        empty. A request whose ``rows`` would cross ``max_rows`` stays
        queued for the next window — unless the batch is still empty, in
        which case it is taken alone (an oversized request must not
        deadlock at the head of its queue).
        """
        out: list[PendingRequest] = []
        rows = 0
        with self._lock:
            while self._depth and len(out) < max_items:
                tenants = list(self._queues.keys())
                took_any = False
                for i in range(len(tenants)):
                    tenant = tenants[(self._cursor + i) % len(tenants)]
                    queue = self._queues[tenant]
                    budget = self._weight_of(tenant)
                    while budget and queue and len(out) < max_items:
                        req = queue[0]
                        if out and rows + req.rows > max_rows:
                            # window is full by rows; leave for the next
                            self._cursor = (self._cursor + i) % len(tenants)
                            return out
                        queue.popleft()
                        self._depth -= 1
                        out.append(req)
                        rows += req.rows
                        budget -= 1
                        took_any = True
                        if rows >= max_rows or len(out) >= max_items:
                            # resume the rotation *after* this tenant
                            # next window — returning with the cursor
                            # parked here would let whoever fills a
                            # whole window (e.g. max_items=1) be served
                            # exclusively until its queue empties
                            self._cursor = (self._cursor + i + 1) % len(
                                tenants
                            )
                            return out
                self._cursor = (self._cursor + len(tenants)) % max(
                    len(tenants), 1
                )
                if not took_any:
                    break
            # drop tenants whose queues emptied, so the rotation stays
            # proportional to *active* tenants
            for tenant in [t for t, q in self._queues.items() if not q]:
                del self._queues[tenant]
            if self._cursor and self._queues:
                self._cursor %= len(self._queues)
            elif not self._queues:
                self._cursor = 0
        return out

    def drain_all(self) -> list[PendingRequest]:
        """Remove and return everything (service shutdown path)."""
        with self._lock:
            out: list[PendingRequest] = []
            for queue in self._queues.values():
                out.extend(queue)
                queue.clear()
            self._queues.clear()
            self._depth = 0
            self._cursor = 0
            return out

    def depths_by_tenant(self) -> dict[str, int]:
        with self._lock:
            return {t: len(q) for t, q in self._queues.items() if q}
