"""Flop and memory-traffic counters for kernel instrumentation."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Aggregate work counters one kernel execution accumulates.

    ``flops`` counts floating-point operations actually scheduled
    (rank-d updates plus the 3 flops/entry of the norm accumulation);
    ``slow_reads``/``slow_writes`` count doubles moved to/from the slow
    memory tier as the kernel models it; ``heap_updates`` counts accepted
    neighbor insertions; ``discarded`` counts distances rejected by the
    root filter without being stored.
    """

    flops: int = 0
    slow_reads: int = 0
    slow_writes: int = 0
    heap_updates: int = 0
    discarded: int = 0

    def merge(self, other: "KernelCounters") -> "KernelCounters":
        self.flops += other.flops
        self.slow_reads += other.slow_reads
        self.slow_writes += other.slow_writes
        self.heap_updates += other.heap_updates
        self.discarded += other.discarded
        return self

    @property
    def slow_doubles(self) -> int:
        return self.slow_reads + self.slow_writes
