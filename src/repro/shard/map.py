"""Consistent, panel-aligned shard map over the reference table.

The scatter/gather router's bit-identicality contract rests on one
observation: the fused kernel computes distances one ``(block_m x
block_n)`` GEMM tile at a time, and BLAS rounding for a given (query,
reference) pair depends on the *tile* it lands in, not just the pair.
Splitting the reference set at arbitrary boundaries changes tile shapes
and perturbs last-ulp distances, which would break "sharded == single
process" at the bit level.

So the shard map never cuts inside a panel. The alive reference
sequence (ascending global id, tombstones excluded) is cut into
consecutive panels of ``panel_width`` — exactly the reference-block
grid a single-process solve with ``block_n == panel_width`` walks —
and panel ``j`` is owned by shard ``j % n_shards``. Every GEMM tile a
shard computes is then byte-for-byte a tile of the single-process
solve, and the gather merge reassembles the identical result.

Mutations keep the same invariant: inserts append new ids (extending
the alive sequence), deletes tombstone ids (compacting it). Either way
the panel grid is re-derived from the *current* alive sequence — the
map is a pure function of ``(alive set, panel_width, n_shards)``, so
every process that sees the same membership epoch derives the same
ownership. Each mutation bumps ``epoch``; shard workers drop their
packed plans when the epoch moves (the per-shard plan invalidation the
streaming layer relies on).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["ShardMap"]


class ShardMap:
    """Deterministic panel-aligned assignment of reference ids to shards.

    Parameters
    ----------
    n_refs:
        Initial reference-table length; ids ``0..n_refs-1`` start alive.
    n_shards:
        Number of shards; must be >= 1.
    panel_width:
        Reference-panel width, normally the solve's ``block_n`` so the
        shard grid coincides with the kernel's GEMM tile grid.
    """

    def __init__(self, n_refs: int, n_shards: int, *, panel_width: int = 2048):
        if n_shards < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        if panel_width < 1:
            raise ValidationError(
                f"panel_width must be >= 1, got {panel_width}"
            )
        if n_refs < 1:
            raise ValidationError(f"n_refs must be >= 1, got {n_refs}")
        self.n_shards = int(n_shards)
        self.panel_width = int(panel_width)
        self._alive = np.ones(int(n_refs), dtype=bool)
        self.epoch = 0
        self._locals: list[np.ndarray] | None = None

    # -- membership ----------------------------------------------------------

    @property
    def n_total(self) -> int:
        """Table length including tombstoned rows."""
        return self._alive.size

    @property
    def n_alive(self) -> int:
        return int(self._alive.sum())

    @property
    def alive_mask(self) -> np.ndarray:
        return self._alive.copy()

    def alive_ids(self) -> np.ndarray:
        """The alive reference sequence, ascending — the exact ``r_idx``
        a single-process solve over the same membership would use."""
        return np.flatnonzero(self._alive)

    def append(self, count: int) -> np.ndarray:
        """Register ``count`` fresh rows appended to the table; returns
        their global ids and bumps the epoch."""
        if count < 1:
            raise ValidationError(f"append count must be >= 1, got {count}")
        start = self._alive.size
        self._alive = np.concatenate(
            [self._alive, np.ones(int(count), dtype=bool)]
        )
        self._bump()
        return np.arange(start, start + int(count), dtype=np.intp)

    def tombstone(self, ids) -> None:
        """Mark ids dead; they leave every shard's partition at the next
        epoch. Unknown or already-dead ids are a validation error."""
        ids = np.asarray(ids, dtype=np.intp).ravel()
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self._alive.size:
            raise ValidationError(
                f"tombstone ids out of range [0, {self._alive.size})"
            )
        if not self._alive[ids].all():
            raise ValidationError("tombstone of an id that is not alive")
        self._alive[ids] = False
        if not self._alive.any():
            raise ValidationError("cannot tombstone the last alive row")
        self._bump()

    def _bump(self) -> None:
        self.epoch += 1
        self._locals = None

    # -- ownership -----------------------------------------------------------

    def _partitions(self) -> list[np.ndarray]:
        if self._locals is None:
            alive = np.flatnonzero(self._alive)
            parts: list[list[np.ndarray]] = [[] for _ in range(self.n_shards)]
            for j, start in enumerate(range(0, alive.size, self.panel_width)):
                parts[j % self.n_shards].append(
                    alive[start : start + self.panel_width]
                )
            self._locals = [
                np.concatenate(p).astype(np.intp)
                if p
                else np.empty(0, dtype=np.intp)
                for p in parts
            ]
        return self._locals

    def local_ids(self, shard: int) -> np.ndarray:
        """Global ids shard ``shard`` owns at the current epoch, in the
        global alive order (so a local solve's panel grid is a subset of
        the single-process one)."""
        if not 0 <= shard < self.n_shards:
            raise ValidationError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        return self._partitions()[shard]

    def owner_of(self, ids) -> np.ndarray:
        """Owning shard per global id (-1 for tombstoned ids)."""
        ids = np.asarray(ids, dtype=np.intp).ravel()
        if ids.size and (ids.min() < 0 or ids.max() >= self._alive.size):
            raise ValidationError(
                f"ids out of range [0, {self._alive.size})"
            )
        # position of each id within the alive sequence -> panel -> shard
        rank = np.cumsum(self._alive) - 1
        owner = (rank[ids] // self.panel_width) % self.n_shards
        return np.where(self._alive[ids], owner, -1).astype(np.intp)

    def spec(self) -> dict:
        """Picklable snapshot a worker can rebuild the map from."""
        return {
            "n_shards": self.n_shards,
            "panel_width": self.panel_width,
            "epoch": self.epoch,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"ShardMap(n_shards={self.n_shards}, alive={self.n_alive}/"
            f"{self.n_total}, panel_width={self.panel_width}, "
            f"epoch={self.epoch})"
        )
