"""The paper's analytic performance model (§2.6, Table 4).

Predicts execution time ``T = T_f + T_o + T_m`` and floating-point
efficiency for the GSKNN variants and the GEMM-based Algorithm 2.1, from
the machine constants (``tau_f``, ``tau_b``, ``tau_l``, ``epsilon``) and
the problem/blocking sizes. Used three ways, exactly as in the paper:

* performance debugging — Figure 4 overlays model vs measurement;
* variant selection — Figure 5's predicted Var#1/Var#6 threshold
  (:mod:`repro.model.threshold`);
* task scheduling — the greedy list scheduler in :mod:`repro.parallel`
  sorts kernels by modeled runtime.
"""

from .costs import CostTerms, memory_terms, compute_terms, effective_tau_l
from .ipc import InstructionCounts, instruction_counts, predict_ipc
from .perf_model import ModelPrediction, PerformanceModel
from .threshold import predict_variant_threshold, threshold_table

__all__ = [
    "CostTerms",
    "memory_terms",
    "compute_terms",
    "effective_tau_l",
    "PerformanceModel",
    "ModelPrediction",
    "predict_variant_threshold",
    "threshold_table",
    "InstructionCounts",
    "instruction_counts",
    "predict_ipc",
]
