"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError`` and friends still propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input array or parameter failed validation.

    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    keep working.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent.

    Raised e.g. when blocking parameters do not satisfy the constraints of
    the Goto partitioning (``m_r`` must divide into ``m_c`` panels, cache
    capacities must be positive, ...).
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its target within its budget."""


class BackendError(ReproError, RuntimeError):
    """An execution backend failed mid-flight.

    Raised e.g. when a worker process of the ``processes`` backend dies
    (OOM-kill, segfault in a native extension) — the pool's low-level
    ``BrokenProcessPool`` is translated into this library error so
    callers see one clean failure instead of a hang or a foreign
    exception type.

    Without a retry policy this is terminal. Under the resilience layer
    (:mod:`repro.resilience`) the same condition is instead handled
    per chunk: only the failed ``(chunk_m, k)`` pieces are resubmitted,
    with backend fallback, and ``BackendError`` only escapes once every
    rung of the ladder is exhausted.
    """


class KernelTimeoutError(ReproError, TimeoutError):
    """A solve exceeded its :class:`repro.resilience.Deadline`.

    Raised instead of hanging: the executor stops dispatching new work,
    reaps worker processes, and unlinks shared-memory segments before
    this propagates. Subclasses ``TimeoutError`` so generic timeout
    handling keeps working.

    Attributes
    ----------
    budget:
        The deadline budget in seconds (``None`` if unknown).
    elapsed:
        Seconds elapsed on the deadline's clock when the budget was
        found exhausted.
    site:
        Where the expiry was detected (e.g. ``"processes chunk wait"``,
        ``"comm.recv"``, ``"schedule task"``).
    partial:
        Free-form progress metadata — for chunked solves a dict with
        ``completed`` / ``total`` chunk counts, so callers can reason
        about how far the solve got before the budget ran out.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: float | None = None,
        elapsed: float | None = None,
        site: str | None = None,
        partial: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed
        self.site = site
        self.partial = dict(partial) if partial else {}


class MemoryBudgetError(ReproError, MemoryError):
    """A solve would exceed its :class:`repro.MemoryBudget`.

    Raised *before* the offending allocation happens: the budget is
    checked when a workspace buffer would grow (or when a plan decides
    a variant's intermediates cannot fit), so a budgeted run fails with
    a clean library error instead of driving the host into swap or an
    OOM kill. Subclasses ``MemoryError`` so generic out-of-memory
    handling keeps working.

    Attributes
    ----------
    limit:
        The configured budget in bytes (``None`` if unknown).
    requested:
        Bytes the denied reservation asked for.
    used:
        Bytes already reserved against the budget at denial time.
    site:
        Where the denial happened (e.g. ``"arena:tile"``,
        ``"plan variant#6 scores"``).
    """

    def __init__(
        self,
        message: str,
        *,
        limit: int | None = None,
        requested: int | None = None,
        used: int | None = None,
        site: str | None = None,
    ) -> None:
        super().__init__(message)
        self.limit = limit
        self.requested = requested
        self.used = used
        self.site = site


class OverloadError(ReproError, RuntimeError):
    """The serving front-end shed a request at admission.

    Raised by :meth:`repro.serve.KnnQueryService.submit` when the
    admission queue is at its configured bound: accepting more work
    would only grow queue delay past every SLO (congestion collapse),
    so the service rejects *explicitly* and tells the caller when to
    come back. Shed requests never enter the queue — nothing is
    silently dropped.

    Attributes
    ----------
    retry_after:
        Estimated seconds until the queue has drained enough to accept
        again (from the measured batch service rate); ``None`` when the
        service has no estimate yet.
    queue_depth:
        The queue depth observed at rejection.
    tenant:
        The tenant whose request was shed.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
        queue_depth: int | None = None,
        tenant: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth
        self.tenant = tenant


class InjectedFault(ReproError, RuntimeError):
    """A failure deliberately injected by a :class:`repro.resilience.FaultPlan`.

    Only ever raised when a fault plan is active (tests, the CI
    fault-matrix job, ``--fault-plan`` experiments). The retry machinery
    treats it exactly like a real worker failure; seeing it escape to
    user code means recovery was disabled or exhausted.
    """
