"""Weighted-round-robin fairness: FairQueue unit behavior plus the
service-level guarantee that a chatty tenant cannot starve the rest."""

from __future__ import annotations

from concurrent.futures import Future

import numpy as np
import pytest

from repro.obs.context import RequestContext
from repro.serve import FairQueue, KnnQueryService, PendingRequest, ServeConfig


def _req(tenant: str, rows: int = 1, k: int = 2) -> PendingRequest:
    return PendingRequest(
        ctx=RequestContext.new(tenant=tenant),
        k=k,
        future=Future(),
        q_idx=np.zeros(rows, dtype=np.intp),
    )


def _weights(mapping: dict[str, int], default: int = 1):
    return lambda tenant: mapping.get(tenant, default)


class TestFairQueueUnit:
    def test_fifo_within_single_tenant(self):
        q = FairQueue(_weights({}))
        reqs = [_req("t") for _ in range(5)]
        for r in reqs:
            q.push(r)
        assert q.take(10, 100) == reqs

    def test_weighted_interleave_across_tenants(self):
        """weight 2 vs 1: each cycle takes two of A for every one of B."""
        q = FairQueue(_weights({"a": 2, "b": 1}))
        a = [_req("a") for _ in range(4)]
        b = [_req("b") for _ in range(4)]
        for r in a + b:
            q.push(r)
        out = q.take(6, 100)
        tenants = [r.tenant for r in out]
        assert tenants == ["a", "a", "b", "a", "a", "b"]

    def test_cursor_persists_across_takes(self):
        """Fairness holds across windows: the rotation resumes where the
        previous take stopped instead of always restarting at tenant 0."""
        q = FairQueue(_weights({}))
        for _ in range(3):
            q.push(_req("a"))
            q.push(_req("b"))
        first = q.take(1, 100)
        second = q.take(1, 100)
        assert {first[0].tenant, second[0].tenant} == {"a", "b"}

    def test_idle_tenant_share_flows_to_busy(self):
        """Work-conserving: B's unused slots don't leave the window short."""
        q = FairQueue(_weights({"a": 1, "b": 1}))
        a = [_req("a") for _ in range(6)]
        for r in a:
            q.push(r)
        assert q.take(6, 100) == a

    def test_row_cap_defers_request_to_next_window(self):
        q = FairQueue(_weights({}))
        small, big = _req("t", rows=2), _req("t", rows=10)
        q.push(small)
        q.push(big)
        out = q.take(10, 5)
        assert out == [small]
        assert len(q) == 1  # big stayed queued

    def test_oversized_request_taken_alone(self):
        """A request bigger than max_rows must not deadlock at the head."""
        q = FairQueue(_weights({}))
        big = _req("t", rows=50)
        q.push(big)
        out = q.take(10, 5)
        assert out == [big]
        assert len(q) == 0

    def test_item_cap(self):
        q = FairQueue(_weights({}))
        for i in range(10):
            q.push(_req("t"))
        assert len(q.take(4, 1000)) == 4
        assert len(q) == 6

    def test_drain_all(self):
        q = FairQueue(_weights({}))
        reqs = [_req("a"), _req("b"), _req("a")]
        for r in reqs:
            q.push(r)
        assert set(map(id, q.drain_all())) == set(map(id, reqs))
        assert len(q) == 0

    def test_depths_by_tenant(self):
        q = FairQueue(_weights({}))
        q.push(_req("a"))
        q.push(_req("a"))
        q.push(_req("b"))
        assert q.depths_by_tenant() == {"a": 2, "b": 1}


class TestServiceFairness:
    def test_flooding_tenant_cannot_starve_others(self, table):
        """Tenant 'flood' pre-loads a deep backlog; a late 'small' tenant
        request must still be served out of an early window rather than
        behind the entire backlog."""
        config = ServeConfig(
            max_batch=4,
            max_wait_ms=100.0,
            max_queue_depth=512,
            policy="fixed",
            tenant_weights={"flood": 1, "small": 1},
        )
        svc = KnnQueryService(table, config)
        flood = [
            svc._queue.push(
                PendingRequest(
                    ctx=RequestContext.new(tenant="flood"),
                    k=2,
                    future=Future(),
                    q_idx=np.array([i % table.shape[0]], dtype=np.intp),
                )
            )
            for i in range(40)
        ]
        assert flood[-1] == 40
        small = PendingRequest(
            ctx=RequestContext.new(tenant="small"),
            k=2,
            future=Future(),
            q_idx=np.array([7], dtype=np.intp),
        )
        svc._queue.push(small)
        first_window = svc._queue.take(config.max_batch, config.max_batch_rows)
        tenants = [r.tenant for r in first_window]
        assert "small" in tenants, tenants
        # and the flood still fills the window's remaining slots
        assert tenants.count("flood") == 3

    def test_weights_shape_goodput_under_contention(self, table):
        """Equal offered load, 3:1 weights -> window shares lean ~3:1."""
        weights = {"heavy": 3, "light": 1}
        q = FairQueue(_weights(weights))
        for i in range(60):
            q.push(_req("heavy"))
            q.push(_req("light"))
        served = {"heavy": 0, "light": 0}
        while True:
            window = q.take(8, 1000)
            if not window:
                break
            for r in window:
                served[r.tenant] += 1
        assert served == {"heavy": 60, "light": 60}  # work-conserving total
        # check the *shape* of early windows: heavy gets ~3/4 of slots
        q2 = FairQueue(_weights(weights))
        for i in range(60):
            q2.push(_req("heavy"))
            q2.push(_req("light"))
        window = q2.take(8, 1000)
        counts = {t: sum(r.tenant == t for r in window) for t in weights}
        assert counts == {"heavy": 6, "light": 2}
