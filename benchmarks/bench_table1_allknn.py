"""Table 1 — randomized-KD-tree all-NN: GEMM-based kernel vs GSKNN.

Paper setup: 8 MPI nodes, N = 1,600,000 points from a 10-d Gaussian
embedded in d ∈ {16, 64, 256, 1024}, leaves of m = 8192 points,
k ∈ {16, 512, 2048}; the table reports total solver seconds for the
"ref" (GEMM + selection) kernel vs GSKNN, with >90% of time inside the
kernel.

Here: same generator and solver, scaled to N = 6144 * SCALE, leaves of
m = 512, k ∈ {16, 128}; both kernels run through the identical outer
solver, so the ratio isolates the kernel swap exactly as the paper's
table does. The headline to reproduce is the *ratio shape*: GSKNN wins
big at low d / small k, and the gap narrows as d and k grow.
"""

from __future__ import annotations

import pytest

from repro.data import embedded_gaussian
from repro.trees import all_nearest_neighbors

from .conftest import run_report, SCALE


N = 16384 * SCALE
LEAF = 2048
ITERS = 2
DIMS = [16, 64, 256]
KS = [16, 128]


@pytest.fixture(scope="module")
def datasets():
    return {
        d: embedded_gaussian(N, d, intrinsic_dim=10, seed=0).points
        for d in DIMS
    }


def _solve(points, k, kernel):
    return all_nearest_neighbors(
        points, k, leaf_size=LEAF, iterations=ITERS, kernel=kernel,
        seed=7, tol=0.0,
    )


def test_table1_rows(benchmark, datasets, report):
    def _run():
        rep = report(
            "table1_allknn",
            f"Table 1 (scaled: N={N}, m={LEAF}, {ITERS} trees, 1 process)\n"
            f"{'k':>5} {'kernel':>7} " + "".join(f"{f'd={d}':>10}" for d in DIMS)
            + "   (seconds, lower is better)",
        )
        for k in KS:
            times = {}
            for kernel in ("gemm", "gsknn"):
                times[kernel] = [
                    _solve(datasets[d], k, kernel).total_seconds for d in DIMS
                ]
            rep.row(
                f"{k:>5} {'ref':>7} "
                + "".join(f"{t:>10.2f}" for t in times["gemm"])
            )
            rep.row(
                f"{k:>5} {'GSKNN':>7} "
                + "".join(f"{t:>10.2f}" for t in times["gsknn"])
            )
            rep.row(
                f"{k:>5} {'ratio':>7} "
                + "".join(
                    f"{a / b:>10.2f}"
                    for a, b in zip(times["gemm"], times["gsknn"])
                )
            )


    run_report(benchmark, _run)


def test_table1_eight_node_projection(benchmark, datasets, report):
    """The paper's actual setting is 8 MPI nodes. The simulated
    distributed solver computes the same answers in one process while
    attributing kernel time per rank and pricing communication with an
    alpha-beta model, yielding a projected 8-node wall clock."""

    def _run():
        from repro.distributed import DistributedAllKnn

        rep = report(
            "table1_8node_projection",
            f"Table 1, projected 8-rank wall clock (N={N}, m={LEAF}, "
            f"{ITERS} trees)\n"
            f"{'kernel':>7} " + "".join(f"{f'd={d}':>12}" for d in DIMS)
            + "   (projected s; serial-kernel s in parens)",
        )
        for kernel in ("gemm", "gsknn"):
            cells = []
            for d in DIMS:
                solver = DistributedAllKnn(
                    8, leaf_size=LEAF, iterations=ITERS, kernel=kernel, seed=7
                )
                rpt = solver.solve(datasets[d], 16)
                cells.append(
                    f"{rpt.projected_seconds:5.2f}({rpt.serial_kernel_seconds:4.1f})"
                )
            name = "ref" if kernel == "gemm" else "GSKNN"
            rep.row(f"{name:>7} " + "".join(f"{c:>12}" for c in cells))

    run_report(benchmark, _run)


def test_kernel_dominates_solver_time(datasets):
    """The paper's framing requires the kernel to dominate: with
    realistic leaf sizes the solver spends most of its time there."""
    rpt = _solve(datasets[64], 16, "gsknn")
    assert rpt.kernel_fraction > 0.5


def test_gsknn_no_slower_at_low_d(datasets):
    """Table 1's strongest column: at d=16, k=16 GSKNN must beat the
    GEMM kernel inside the same solver."""
    ref = _solve(datasets[16], 16, "gemm").kernel_seconds
    ours = _solve(datasets[16], 16, "gsknn").kernel_seconds
    assert ours < ref * 1.1  # allow noise; expect a clear win normally


@pytest.mark.parametrize("kernel", ["gemm", "gsknn"])
def test_bench_solver(benchmark, datasets, kernel):
    benchmark.group = "table1 d=64 k=16"
    benchmark.name = kernel
    benchmark(lambda: _solve(datasets[64], 16, kernel))
