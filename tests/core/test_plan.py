"""Tests for the amortized repeated-query engine (GsknnPlan / PlanCache)."""

from __future__ import annotations

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.neighbors import KnnResult
from repro.core.plan import GsknnPlan, PlanCache
from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry

from ..conftest import brute_force_knn


@pytest.fixture
def problem(small_cloud, rng):
    q = rng.permutation(300)[:93]
    r = rng.permutation(300)[:211]
    return small_cloud, q, r


class TestPlanEquivalence:
    """Plan executes must be bit-identical to the one-shot kernel."""

    @pytest.mark.parametrize("norm", ["l2", "l1", "linf", "cosine", 2.5])
    @pytest.mark.parametrize("variant", [1, 5, 6])
    def test_bitwise_matches_gsknn(self, problem, norm, variant):
        X, q, r = problem
        want = gsknn(X, q, r, 9, norm=norm, variant=variant)
        plan = GsknnPlan(X, r, norm=norm, variant=variant)
        got = plan.execute(q, 9)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)
        # a warm repeat must not change the answer either
        again = plan.execute(q, 9)
        np.testing.assert_array_equal(again.distances, want.distances)
        np.testing.assert_array_equal(again.indices, want.indices)

    @pytest.mark.parametrize("norm,p", [("l2", 2.0), ("l1", 1.0), (3.0, 3.0)])
    def test_matches_brute_force(self, problem, norm, p):
        X, q, r = problem
        plan = GsknnPlan(X, r, norm=norm)
        got = plan.execute(q, 7)
        truth_d, _ = brute_force_knn(X, q, r, 7, p=p)
        np.testing.assert_allclose(got.distances, truth_d, atol=1e-9)

    def test_legacy_select_matches_masked(self, problem):
        X, q, r = problem
        plan = GsknnPlan(X, r)
        masked = plan.execute(q, 6, select="masked", warm_start=False)
        legacy = plan.execute(q, 6, select="legacy", warm_start=False)
        np.testing.assert_array_equal(masked.distances, legacy.distances)
        np.testing.assert_array_equal(masked.indices, legacy.indices)

    def test_initial_lists_match_gsknn(self, problem):
        X, q, r = problem
        seed = gsknn(X, q, r[:50], 5)
        want = gsknn(X, q, r[50:], 5, initial=seed)
        plan = GsknnPlan(X, r[50:])
        got = plan.execute(q, 5, initial=seed)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)

    def test_uncached_panels_match(self, problem):
        X, q, r = problem
        want = gsknn(X, q, r, 9)
        plan = GsknnPlan(X, r, cache_panels=False)
        assert not plan.panels_cached
        got = plan.execute(q, 9)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)

    def test_ragged_blocks(self, small_cloud, rng):
        """Odd block sizes force ragged panels and partial tiles."""
        q = rng.permutation(300)[:31]
        r = rng.permutation(300)[:97]
        want = gsknn(small_cloud, q, r, 4, block_m=7, block_n=13)
        plan = GsknnPlan(small_cloud, r, block_m=7, block_n=13)
        got = plan.execute(q, 4)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)

    def test_precomputed_x2(self, problem):
        X, q, r = problem
        X2 = (X**2).sum(axis=1)
        want = gsknn(X, q, r, 6, X2=X2)
        got = GsknnPlan(X, r, X2=X2).execute(q, 6)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)


class TestWarmStart:
    def test_auto_warm_repeat_is_bit_identical(self, problem):
        X, q, r = problem
        plan = GsknnPlan(X, r)
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            first = plan.execute(q, 8)
            second = plan.execute(q, 8)
            snap = get_registry().snapshot()["counters"]
            assert snap["plan.executes"] == 2
            assert snap["plan.reuse_hits"] == 1
            assert snap["plan.warm_starts"] == 1
        finally:
            set_registry(old)
        np.testing.assert_array_equal(first.distances, second.distances)
        np.testing.assert_array_equal(first.indices, second.indices)

    def test_different_queries_do_not_warm(self, problem):
        X, q, r = problem
        plan = GsknnPlan(X, r)
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            plan.execute(q, 8)
            plan.execute(q[:-1], 8)
            plan.execute(q, 7)  # same q, different k: no warm either
            snap = get_registry().snapshot()["counters"]
            assert snap.get("plan.warm_starts", 0) == 0
        finally:
            set_registry(old)

    def test_warm_start_false_never_seeds(self, problem):
        X, q, r = problem
        plan = GsknnPlan(X, r)
        plan.execute(q, 8, warm_start=False)
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            plan.execute(q, 8, warm_start=False)
            snap = get_registry().snapshot()["counters"]
            assert snap.get("plan.warm_starts", 0) == 0
        finally:
            set_registry(old)

    def test_zero_survivor_shortcut(self, problem):
        """When the seeded lists beat every candidate, the call returns the
        initial lists — without sorting or merging — as fresh copies."""
        X, q, r = problem
        plan = GsknnPlan(X, r)
        k = 5
        initial = KnnResult(
            np.full((q.size, k), -1.0),
            np.tile(np.arange(k, dtype=np.intp), (q.size, 1)),
        )
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            got = plan.execute(q, k, initial=initial)
            snap = get_registry().snapshot()["counters"]
            assert snap["plan.unchanged_returns"] == 1
        finally:
            set_registry(old)
        np.testing.assert_array_equal(got.distances, initial.distances)
        np.testing.assert_array_equal(got.indices, initial.indices)
        assert got.distances is not initial.distances  # no aliasing
        assert got.indices is not initial.indices
        # the legacy one-shot path agrees on the merged answer (ids within
        # an all-tied row are permuted arbitrarily, as the heaps document)
        want = gsknn(X, q, r, k, initial=initial)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(
            np.sort(got.indices, axis=1), np.sort(want.indices, axis=1)
        )


class TestStaleness:
    def test_inplace_mutation_triggers_rebuild(self, problem):
        X, q, r = problem
        X = X.copy()
        plan = GsknnPlan(X, r)
        plan.execute(q, 6)
        X[0] += 1.0  # first row is fingerprinted
        got = plan.execute(q, 6)
        assert plan.stale_rebuilds == 1
        want = gsknn(X, q, r, 6)
        np.testing.assert_array_equal(got.distances, want.distances)
        np.testing.assert_array_equal(got.indices, want.indices)

    def test_rebuild_drops_previous_result(self, problem):
        """A stale rebuild must void the auto-warm seed: the old result
        may contain distances the mutated table no longer attains."""
        X, q, r = problem
        X = X.copy()
        plan = GsknnPlan(X, r)
        plan.execute(q, 6)
        X[-1] *= 3.0
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            got = plan.execute(q, 6)
            snap = get_registry().snapshot()["counters"]
            assert snap["plan.stale_rebuilds"] == 1
            assert snap.get("plan.warm_starts", 0) == 0
        finally:
            set_registry(old)
        want = gsknn(X, q, r, 6)
        np.testing.assert_array_equal(got.distances, want.distances)

    def test_tracking_disabled_skips_check(self, problem):
        X, q, r = problem
        X = X.copy()
        plan = GsknnPlan(X, r, track_staleness=False)
        plan.execute(q, 6)
        X[0] += 1.0
        plan.execute(q, 6)
        assert plan.stale_rebuilds == 0


class TestValidation:
    def test_bad_select_rejected(self, problem):
        X, q, r = problem
        with pytest.raises(ValidationError, match="select"):
            GsknnPlan(X, r).execute(q, 3, select="bogus")

    def test_bad_initial_shape_rejected(self, problem):
        X, q, r = problem
        bad = KnnResult(np.zeros((2, 3)), np.zeros((2, 3), dtype=np.intp))
        with pytest.raises(ValidationError, match="initial lists"):
            GsknnPlan(X, r).execute(q, 3, initial=bad)

    def test_non_executable_variant_rejected(self, problem):
        X, q, r = problem
        with pytest.raises(ValidationError, match="not executable"):
            GsknnPlan(X, r).execute(q, 3, variant=2)

    def test_bad_blocks_rejected(self, problem):
        X, _, r = problem
        with pytest.raises(ValidationError):
            GsknnPlan(X, r, block_m=0)

    def test_bad_x2_shape_rejected(self, problem):
        X, _, r = problem
        with pytest.raises(ValidationError, match="X2"):
            GsknnPlan(X, r, X2=np.zeros(X.shape[0] - 1))


class TestPlanCache:
    def test_hit_returns_same_plan(self, problem):
        X, _, r = problem
        cache = PlanCache()
        old = set_registry(MetricsRegistry(enabled=True))
        try:
            p1 = cache.get(X, r)
            p2 = cache.get(X, r)
            snap = get_registry().snapshot()["counters"]
            assert snap["plan.cache_misses"] == 1
            assert snap["plan.cache_hits"] == 1
        finally:
            set_registry(old)
        assert p1 is p2
        assert len(cache) == 1

    def test_distinct_refs_get_distinct_plans(self, problem):
        X, _, r = problem
        cache = PlanCache()
        assert cache.get(X, r) is not cache.get(X, r[:-1])
        assert len(cache) == 2

    def test_distinct_norms_get_distinct_plans(self, problem):
        X, _, r = problem
        cache = PlanCache()
        assert cache.get(X, r, norm="l2") is not cache.get(X, r, norm="l1")

    def test_lru_eviction(self, problem, rng):
        X, _, r = problem
        cache = PlanCache(max_plans=2)
        p1 = cache.get(X, r[:50])
        cache.get(X, r[:60])
        cache.get(X, r[:70])  # evicts the r[:50] plan
        assert len(cache) == 2
        assert cache.get(X, r[:50]) is not p1

    def test_plans_share_one_arena_pool(self, problem):
        X, _, r = problem
        cache = PlanCache()
        assert cache.get(X, r).arena_pool is cache.get(X, r[:-1]).arena_pool

    def test_clear(self, problem):
        X, _, r = problem
        cache = PlanCache()
        cache.get(X, r)
        cache.clear()
        assert len(cache) == 0

    def test_bad_blocking_rejected(self, problem):
        X, _, r = problem
        with pytest.raises(ValidationError, match="blocking"):
            PlanCache().get(X, r, blocking=42)

    def test_bad_max_plans_rejected(self):
        with pytest.raises(ValidationError):
            PlanCache(max_plans=0)


class TestMemoryAmortization:
    """The plan's reason to exist: warm executes stop allocating."""

    def test_serial_executes_reuse_one_arena(self, rng):
        X = rng.random((2048, 16))
        q = np.arange(1024)
        r = np.arange(1024, 2048)
        plan = GsknnPlan(X, r)
        for _ in range(3):
            plan.execute(q, 16, warm_start=False)
        assert plan.arena_pool.created == 1
        stable = plan.arena_pool.nbytes
        assert stable > 0  # the arena really is holding the tile buffers
        plan.execute(q, 16, warm_start=False)
        assert plan.arena_pool.nbytes == stable  # grow-only, fully grown

    def test_warm_repeats_do_not_grow_memory(self, rng):
        """tracemalloc regression: steady-state repeats neither retain new
        memory nor spike transient allocations anywhere near tile size
        (one (block_m, n) tile here is 16 MiB)."""
        X = rng.random((2048, 16))
        q = np.arange(1024)
        r = np.arange(1024, 2048)
        tracemalloc.start()
        try:
            plan = GsknnPlan(X, r)
            for _ in range(2):  # grow the arena, seed the warm path
                plan.execute(q, 16)
            gc.collect()
            base, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            for _ in range(5):
                plan.execute(q, 16)  # results discarded
            gc.collect()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        growth = current - base
        transient = peak - base
        # (1024, 16) result copies and sort scratch are fine; a fresh tile
        # (1024 x 1024 doubles = 8 MiB) or a leaked arena is not.
        assert growth < 2 * 2**20, f"retained {growth / 2**20:.2f} MiB"
        assert transient < 4 * 2**20, f"transient peak {transient / 2**20:.2f} MiB"


class TestEphemeralOneShot:
    def test_gsknn_retains_nothing(self, problem):
        """The one-shot path's ephemeral plan must not pin panel memory."""
        X, q, r = problem
        gc.collect()
        tracemalloc.start()
        try:
            gsknn(X, q, r, 5)
            gc.collect()
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert current < 256 * 1024  # nothing kernel-sized survives the call
