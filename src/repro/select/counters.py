"""Operation counters for selection algorithms.

Table 3 of the paper states best/worst/average complexities for heap
selection, quickselect, and merge-sort selection. To *measure* those rows
(``benchmarks/bench_table3_selection.py``) every scalar selection
implementation threads a :class:`SelectionStats` through its hot loop and
bumps these counters. The counters deliberately mirror the cost classes of
the paper's performance model: comparisons and data moves dominate the
"other instructions" term ``T_o``, and random accesses dominate the heap's
``2 tau_l m k log k`` memory term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SelectionStats"]


@dataclass
class SelectionStats:
    """Mutable tally of the work one selection pass performed.

    Attributes
    ----------
    comparisons:
        Value-vs-value comparisons (the dominant ALU cost).
    moves:
        Element writes (swaps count as 3 moves, simple writes as 1).
    random_accesses:
        Reads at non-sequential addresses — heap sift paths, quickselect
        partition jumps. These pay the latency cost ``tau_l`` in the model.
    sequential_accesses:
        Streaming reads over the candidate array — these pay ``tau_b``.
    """

    comparisons: int = 0
    moves: int = 0
    random_accesses: int = 0
    sequential_accesses: int = 0

    def merge(self, other: "SelectionStats") -> "SelectionStats":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.comparisons += other.comparisons
        self.moves += other.moves
        self.random_accesses += other.random_accesses
        self.sequential_accesses += other.sequential_accesses
        return self

    @property
    def total_ops(self) -> int:
        """Aggregate operation count (rough instruction proxy)."""
        return (
            self.comparisons
            + self.moves
            + self.random_accesses
            + self.sequential_accesses
        )

    def reset(self) -> None:
        self.comparisons = 0
        self.moves = 0
        self.random_accesses = 0
        self.sequential_accesses = 0
