"""Input validation helpers shared across kernels.

The kernels in :mod:`repro.core` all accept the same trio of inputs — a
coordinate table ``X`` of shape ``(N, d)`` plus query/reference *index*
arrays into it (the "general stride" interface of GSKNN). Validation is
centralized here so every entry point rejects malformed input with the
same, precise error messages.
"""

from __future__ import annotations

import numpy as np

from .errors import ValidationError

__all__ = [
    "as_coordinate_table",
    "as_index_array",
    "check_k",
    "check_finite",
]


def as_coordinate_table(X: np.ndarray, *, name: str = "X") -> np.ndarray:
    """Validate and canonicalize a coordinate table.

    Returns a C-contiguous float64 view/copy of ``X`` with shape ``(N, d)``.
    Point ``i`` is row ``X[i]``; this is the transpose of the paper's
    ``d x N`` column-major convention but is the natural row-major layout
    for numpy (a point is one contiguous cache-friendly row).
    """
    arr = np.asarray(X)
    if arr.ndim != 2:
        raise ValidationError(
            f"{name} must be 2-D (N points x d coordinates), got ndim={arr.ndim}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(
            f"{name} must be non-empty, got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.floating):
        # bool counts as numeric here: binary feature vectors with the
        # l1 norm give Hamming-distance kNN, a legitimate use
        if not (
            np.issubdtype(arr.dtype, np.number) or arr.dtype == np.bool_
        ):
            raise ValidationError(
                f"{name} must be numeric, got dtype {arr.dtype}"
            )
    return np.ascontiguousarray(arr, dtype=np.float64)


def as_index_array(idx: np.ndarray, n_points: int, *, name: str = "idx") -> np.ndarray:
    """Validate an index array into a coordinate table of ``n_points`` rows.

    Accepts any integer sequence; returns a contiguous ``intp`` array.
    Duplicate indices are allowed (a point may be both query and reference,
    and approximate solvers routinely resubmit points).
    """
    arr = np.asarray(idx)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.floating):
            raise ValidationError(
                f"{name} must be an integer index array, got dtype {arr.dtype}"
            )
        # Whole-number float arrays are coerced as a convenience, but the
        # naive round-trip check (arr == arr.astype(intp)) is unsound
        # above the dtype's exact-integer range: a float64 cannot
        # represent every integer >= 2**53, so a corrupted index would
        # cast, compare equal to its own lossy self, and pass. Bound the
        # magnitude by the mantissa width (2**53 for float64, 2**24 for
        # float32) before trusting the cast.
        if not np.isfinite(arr).all():
            raise ValidationError(
                f"{name} contains non-finite values; cannot be coerced to "
                "integer indices"
            )
        exact_bound = 2.0 ** (np.finfo(arr.dtype).nmant + 1)
        if np.abs(arr).max() >= exact_bound:
            raise ValidationError(
                f"{name} has float magnitude >= 2**{np.finfo(arr.dtype).nmant + 1}, "
                f"beyond {arr.dtype}'s exact integer range; pass an integer "
                "dtype array instead"
            )
        if not np.all(arr == np.trunc(arr)):
            raise ValidationError(
                f"{name} contains non-integral float values; indices must "
                "be whole numbers"
            )
        arr = arr.astype(np.intp)
    arr = np.ascontiguousarray(arr, dtype=np.intp)
    if arr.min(initial=0) < 0 or (arr.size and arr.min() < 0):
        raise ValidationError(f"{name} contains negative indices")
    if arr.size and arr.max() >= n_points:
        raise ValidationError(
            f"{name} contains index {int(arr.max())} out of range for "
            f"{n_points} points"
        )
    return arr


def check_k(k: int, n_refs: int) -> int:
    """Validate the neighbor count ``k`` against the reference-set size."""
    k = int(k)
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if k > n_refs:
        raise ValidationError(
            f"k={k} exceeds the number of reference points ({n_refs}); "
            "there are not enough candidates to fill the neighbor list"
        )
    return k


#: ``check_finite`` scans arrays above this size in row chunks: the scan
#: itself must stay out-of-core-safe (``np.isfinite(X)`` materializes a
#: same-shape boolean — a quarter of a memmapped table's bytes in RAM).
_FINITE_SCAN_CHUNK_BYTES = 16 << 20


def check_finite(X: np.ndarray, *, name: str = "X") -> None:
    """Reject NaN/inf coordinates.

    Non-finite coordinates silently corrupt the expanded squared-distance
    form ``|x|^2 + |y|^2 - 2<x,y>`` (NaN poisons whole GEMM panels), so the
    public kernels reject them up front. Large (possibly memmapped)
    tables are scanned in bounded row chunks — same answer, O(chunk)
    temporary instead of O(N d).
    """
    arr = np.asarray(X)
    if arr.ndim >= 1 and arr.nbytes > _FINITE_SCAN_CHUNK_BYTES:
        row_bytes = max(1, arr.nbytes // max(1, arr.shape[0]))
        step = max(1, _FINITE_SCAN_CHUNK_BYTES // row_bytes)
        for start in range(0, arr.shape[0], step):
            if not np.isfinite(arr[start : start + step]).all():
                raise ValidationError(
                    f"{name} contains non-finite values (NaN or inf)"
                )
        return
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains non-finite values (NaN or inf)")
