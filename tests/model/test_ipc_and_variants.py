"""Tests for IPC prediction and the Var#2/Var#3 cost estimates."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.machine.params import IVY_BRIDGE
from repro.model import PerformanceModel
from repro.model.ipc import instruction_counts, predict_ipc


class TestInstructionCounts:
    def test_classes_positive(self):
        counts = instruction_counts(2048, 2048, 64, 16)
        assert counts.flop_instructions > 0
        assert counts.selection_instructions > 0
        assert counts.memory_instructions > 0
        assert counts.total == pytest.approx(
            counts.flop_instructions
            + counts.selection_instructions
            + counts.memory_instructions
        )

    def test_selection_share_grows_with_k(self):
        small = instruction_counts(2048, 2048, 16, 4)
        large = instruction_counts(2048, 2048, 16, 1024)
        share = lambda c: c.selection_instructions / c.total
        assert share(large) > share(small)

    def test_simd_width_reduces_flop_instructions(self):
        wide = instruction_counts(512, 512, 64, 8, simd_width=8)
        narrow = instruction_counts(512, 512, 64, 8, simd_width=1)
        assert wide.flop_instructions < narrow.flop_instructions

    def test_validation(self):
        with pytest.raises(ValidationError):
            instruction_counts(64, 64, 8, 4, simd_width=0)


class TestPredictIpc:
    def test_reasonable_range(self):
        ipc = predict_ipc(8192, 8192, 64, 16)
        assert 0.01 < ipc < 16.0

    def test_ipc_flatter_than_gflops_in_k(self):
        """The paper's point: GFLOPS collapses with k while IPC shows the
        machine still doing work. IPC must fall by a smaller factor."""
        model = PerformanceModel()
        g16 = model.predict("var1", 8192, 8192, 16, 16).gflops
        g2k = model.predict("var1", 8192, 8192, 16, 2048).gflops
        ipc16 = predict_ipc(8192, 8192, 16, 16)
        ipc2k = predict_ipc(8192, 8192, 16, 2048)
        assert (g16 / g2k) > (ipc16 / ipc2k) * 2


class TestVar23Estimates:
    @pytest.fixture
    def model(self):
        return PerformanceModel()

    def test_var2_no_better_than_var1_small_k(self, model):
        """§2.3 reason (1): for small k they store more than Var#1."""
        for d in (16, 64, 512):
            assert model.predict_seconds(
                "var2", 8192, 8192, d, 16
            ) >= model.predict_seconds("var1", 8192, 8192, d, 16)

    def test_var2_slower_than_var6_large_k(self, model):
        """§2.3 reason (2): for large k the hot heaps evict the panels."""
        for d in (16, 64):
            assert model.predict_seconds(
                "var2", 8192, 8192, d, 2048
            ) > model.predict_seconds("var6", 8192, 8192, d, 2048)

    def test_var3_no_better_than_var2(self, model):
        """Var#3's heaps fight the smaller L1: at least as bad."""
        for k in (16, 256, 2048):
            assert model.predict_seconds(
                "var3", 8192, 8192, 64, k
            ) >= model.predict_seconds("var2", 8192, 8192, 64, k)

    def test_never_the_unique_best(self, model):
        """The paper's conclusion: across the whole grid, Var#2/#3 never
        strictly beat both Var#1 and Var#6."""
        for d in (16, 64, 256, 1024):
            for k in (4, 64, 512, 4096):
                best_kept = min(
                    model.predict_seconds("var1", 8192, 8192, d, k),
                    model.predict_seconds("var6", 8192, 8192, d, k),
                )
                for variant in ("var2", "var3"):
                    assert (
                        model.predict_seconds(variant, 8192, 8192, d, k)
                        >= best_kept * 0.999
                    )
