"""Workspace arenas: preallocated, reusable kernel buffers.

The fused kernel's steady state touches the same intermediate shapes on
every block — one ``(block_m, block_n)`` distance tile, one boolean
survivor mask, the ``(m, k)`` running neighbor lists — yet the one-shot
path allocates them fresh per block and per call. A
:class:`WorkspaceArena` keeps one grow-only buffer per *role* and hands
out right-sized views, so a plan's repeated executions perform no large
allocations after the first call (the property the tracemalloc
regression test pins down).

Three pieces:

* :class:`WorkspaceArena` — keyed, grow-only buffers; ``take`` returns
  an uninitialized view of exactly the requested shape. Not thread-safe
  by design (an arena belongs to one execution at a time).
* :class:`NullArena` — same interface, always allocates. The ephemeral
  one-shot kernel path uses it so its behavior (and memory profile)
  stays exactly the seed's.
* :class:`ArenaPool` — a thread-safe borrow/return pool of arenas.
  Concurrent executions (thread backends, task-parallel group solves)
  each borrow a private arena, so reuse never races.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from ..errors import ValidationError
from .membudget import MemoryBudget

__all__ = ["WorkspaceArena", "NullArena", "ArenaPool"]


class WorkspaceArena:
    """Keyed grow-only buffers for ``out=``-style kernel internals.

    ``take(key, shape, dtype)`` returns a view of the key's backing
    buffer with exactly ``shape``; the buffer grows (never shrinks) to
    the elementwise max shape ever requested, so a steady-state workload
    stops allocating after its first pass. Contents are *not* cleared —
    callers own initialization, exactly like ``np.empty``.

    With a :class:`~repro.core.membudget.MemoryBudget` attached, every
    buffer growth is charged against the budget *before* the allocation
    happens (a replaced buffer's bytes are returned first — grow-only
    keys never hold old and new generations at once past the swap), so
    a budgeted run is refused with
    :class:`~repro.errors.MemoryBudgetError` instead of driving the
    host out of memory. ``peak_nbytes`` records the arena's own
    high-water mark whether or not a budget is attached.
    """

    def __init__(self, budget: MemoryBudget | None = None) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.budget = budget
        self._peak_nbytes = 0

    def _swap(self, key: str, nbytes: int) -> None:
        """Account for replacing ``key``'s buffer with ``nbytes`` bytes."""
        old = self._buffers.pop(key, None)
        if old is not None and self.budget is not None:
            self.budget.release(old.nbytes)
        if self.budget is not None:
            self.budget.reserve(nbytes, site=f"arena:{key}")

    def take(
        self,
        key: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValidationError(f"arena shape must be non-negative, got {shape}")
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if (
            buf is None
            or buf.dtype != dtype
            or buf.ndim != len(shape)
            or any(b < s for b, s in zip(buf.shape, shape))
        ):
            grown = (
                shape
                if buf is None or buf.dtype != dtype or buf.ndim != len(shape)
                else tuple(max(b, s) for b, s in zip(buf.shape, shape))
            )
            size = 1
            for s in grown:
                size *= s
            self._swap(key, size * dtype.itemsize)
            buf = np.empty(grown, dtype=dtype)
            self._buffers[key] = buf
            self._peak_nbytes = max(self._peak_nbytes, self.nbytes)
        if buf.shape == shape:
            return buf
        return buf[tuple(slice(0, s) for s in shape)]

    def take_c(
        self,
        key: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """Like :meth:`take`, but the view is always C-contiguous.

        Backed by a flat grow-only buffer reshaped per request, so a key
        whose shape varies call-to-call (ragged leaf groups) still hands
        out dense arrays — BLAS ``out=`` destinations and mask scans
        need contiguity to stay on their fast paths, and a strided view
        of a larger 2-D buffer would silently fall off them.
        """
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValidationError(f"arena shape must be non-negative, got {shape}")
        dtype = np.dtype(dtype)
        size = 1
        for s in shape:
            size *= s
        buf = self._buffers.get(key)
        if buf is None or buf.dtype != dtype or buf.ndim != 1 or buf.size < size:
            grown = size if buf is None or buf.ndim != 1 else max(buf.size, size)
            self._swap(key, grown * dtype.itemsize)
            buf = np.empty(grown, dtype=dtype)
            self._buffers[key] = buf
            self._peak_nbytes = max(self._peak_nbytes, self.nbytes)
        return buf[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all keys."""
        return sum(buf.nbytes for buf in self._buffers.values())

    @property
    def peak_nbytes(self) -> int:
        """High-water mark of :attr:`nbytes` over the arena's lifetime."""
        return self._peak_nbytes

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        if self.budget is not None:
            for buf in self._buffers.values():
                self.budget.release(buf.nbytes)
        self._buffers.clear()


class NullArena:
    """Arena interface that always allocates — the ephemeral path.

    One-shot kernel calls run through a plan too, but must keep the
    seed's exact allocation behavior (nothing retained after the call);
    they get this arena.
    """

    budget = None
    peak_nbytes = 0

    def take(
        self,
        key: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        return np.empty(tuple(int(s) for s in shape), dtype=np.dtype(dtype))

    take_c = take

    @property
    def nbytes(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        return None


class ArenaPool:
    """Thread-safe borrow/return pool of workspace arenas.

    A plan owns one pool; every ``execute`` borrows a private arena for
    the duration of the call. Under a thread backend, concurrent
    executions each get their own arena (the pool grows to the peak
    concurrency and then stops allocating); serial repetition always
    reuses the same one.

    Pass ``budget=`` to make every arena the pool creates charge one
    shared :class:`~repro.core.membudget.MemoryBudget` — the budget is
    a *pool-wide* cap, so concurrent borrowers compete for the same
    headroom (their combined footprint is what must fit on the host).
    """

    def __init__(
        self,
        factory: Callable[[], WorkspaceArena | NullArena] | None = None,
        *,
        budget: MemoryBudget | None = None,
    ) -> None:
        if factory is None:
            if budget is not None:
                factory = lambda: WorkspaceArena(budget=budget)  # noqa: E731
            else:
                factory = WorkspaceArena
        elif budget is not None:
            raise ValidationError("pass either factory or budget, not both")
        self.budget = budget
        self._factory = factory
        self._lock = threading.Lock()
        self._free: list[WorkspaceArena | NullArena] = []
        self._created = 0
        self._all: list[WorkspaceArena | NullArena] = []

    @contextmanager
    def borrow(self) -> Iterator[WorkspaceArena | NullArena]:
        with self._lock:
            if self._free:
                arena = self._free.pop()
            else:
                arena = self._factory()
                self._created += 1
                self._all.append(arena)
        try:
            yield arena
        finally:
            with self._lock:
                self._free.append(arena)

    @property
    def created(self) -> int:
        return self._created

    @property
    def nbytes(self) -> int:
        """Bytes held by *idle* arenas (borrowed ones are not counted)."""
        with self._lock:
            return sum(a.nbytes for a in self._free)

    @property
    def peak_nbytes(self) -> int:
        """Summed high-water marks of every arena ever created."""
        with self._lock:
            return sum(a.peak_nbytes for a in self._all)


def null_arena_pool() -> ArenaPool:
    """A pool whose arenas never retain memory (ephemeral plan calls)."""
    return ArenaPool(factory=NullArena)
