"""Profiling helpers — "no optimization without measuring".

Thin, dependency-free wrappers around :mod:`cProfile` that return
structured hotspot data instead of printing a report, so benchmarks and
notebooks can assert on *where* time goes (e.g. "the GEMM call dominates
the reference kernel at high d" is a profile fact, not a guess).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ValidationError

__all__ = ["Hotspot", "profile_call"]


@dataclass(frozen=True)
class Hotspot:
    """One profiled function's aggregate cost."""

    name: str  # "module:lineno(function)" as pstats prints it
    calls: int
    total_seconds: float  # time inside the function itself (tottime)
    cumulative_seconds: float

    def matches(self, needle: str) -> bool:
        return needle in self.name


def profile_call(
    fn: Callable[[], Any],
    *,
    top: int = 20,
    sort: str = "tottime",
) -> tuple[Any, list[Hotspot]]:
    """Run ``fn()`` under cProfile; return ``(result, hotspots)``.

    ``hotspots`` are the ``top`` entries sorted by ``sort`` ("tottime"
    or "cumulative").
    """
    if top < 1:
        raise ValidationError(f"top must be >= 1, got {top}")
    if sort not in ("tottime", "cumulative"):
        raise ValidationError(
            f"sort must be 'tottime' or 'cumulative', got {sort!r}"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)

    hotspots: list[Hotspot] = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        hotspots.append(
            Hotspot(
                name=f"{filename}:{lineno}({name})",
                calls=nc,
                total_seconds=tottime,
                cumulative_seconds=cumtime,
            )
        )
    key = (
        (lambda h: h.total_seconds)
        if sort == "tottime"
        else (lambda h: h.cumulative_seconds)
    )
    hotspots.sort(key=key, reverse=True)
    return result, hotspots[:top]
