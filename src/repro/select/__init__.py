"""Neighbor-selection algorithms (paper §2.2, Table 3).

The kNN kernel must pick the ``k`` smallest of ``n`` candidate distances
per query. The paper analyzes three families and chooses max-heap
selection for its O(n) best case and array locality:

* :class:`~repro.select.heap.BinaryMaxHeap` — the classic array-embedded
  binary max heap (used by GSKNN Var#1 for small ``k``);
* :class:`~repro.select.heap.DHeap` — the padded d-ary heap (a 4-heap by
  default) whose children share a cache line (used by Var#6 for large
  ``k``);
* :func:`~repro.select.quickselect.quickselect_smallest` — Hoare
  partition-based selection, O(n+k) average;
* :func:`~repro.select.mergeselect.merge_select` — chunked merge-sort
  selection, O(n log k) best *and* worst case.

All scalar implementations count comparisons/moves via
:class:`~repro.select.counters.SelectionStats` so Table 3's complexity rows
can be measured, not just asserted. The production fast path used by the
numpy GSKNN kernel is the batched vectorized merge in
:mod:`repro.select.vectorized`.
"""

from .bitonic import (
    bitonic_merge_rows,
    bitonic_merge_select_rows,
    bitonic_sort_rows,
)
from .counters import SelectionStats
from .heap import BinaryMaxHeap, DHeap, heap_select_smallest
from .mergeselect import merge_partial_topk, merge_select
from .quickselect import quickselect_smallest
from .vectorized import ArenaNeighborLists, BatchedNeighborLists, merge_block

__all__ = [
    "SelectionStats",
    "BinaryMaxHeap",
    "DHeap",
    "heap_select_smallest",
    "quickselect_smallest",
    "merge_partial_topk",
    "merge_select",
    "ArenaNeighborLists",
    "BatchedNeighborLists",
    "merge_block",
    "bitonic_sort_rows",
    "bitonic_merge_rows",
    "bitonic_merge_select_rows",
]
