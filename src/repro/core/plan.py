"""Kernel plans: amortized state for repeated GSKNN queries (§2.2's
amortization, carried *across* calls).

GSKNN's in-call trick is amortization — gather/pack once per cache
block, reuse across the micro-kernel loops — but the repeated-call
drivers (tree iterations, streaming refreshes, batches, data-parallel
chunks) historically rebuilt everything between calls: re-gathered the
same reference rows, recomputed their squared-norm side table,
re-resolved the variant, and reallocated every distance/merge temporary.
A :class:`GsknnPlan` hoists all of that to construction time:

* **cached reference panels** — the 6th loop's ``(R_c, R2_c)`` blocks,
  gathered once and reused by every execute; invalidated through the
  same cheap content fingerprint :mod:`repro.core.norm_cache` uses
  (in-place mutation of ``X`` triggers a rebuild, not a wrong answer);
* **a workspace arena** (:mod:`repro.core.arena`) — distance tiles,
  survivor masks, and the neighbor-list state are ``out=``-written into
  grow-only buffers, so the warm steady state performs no large
  allocations per call (pinned by a tracemalloc regression test);
* **resolved blocking/variant decisions** — tuned block sizes load
  once; the Var#1/Var#6 choice is memoized per ``(m, k)``.

Two selection modes share one loop nest. ``select="legacy"`` replicates
the historical one-shot path operation-for-operation (it is what
:func:`repro.core.gsknn.gsknn` runs through, via an ephemeral plan with
a :class:`~repro.core.arena.NullArena`). ``select="masked"`` is the
plan path: a threshold mask extracts only the candidates that can
possibly enter a list, so warm calls touch a few survivors per row
instead of copying and partitioning whole tiles. Both produce identical
results whenever distances are tie-free (ties are broken arbitrarily,
exactly as the heaps document).

Repeated executes against the *same* queries warm-start automatically:
the previous result seeds the root filter, and when nothing beats it
the call returns without sorting or merging at all. Cold vs warm cost
is observable as ``plan.build`` / ``plan.execute`` spans and
``plan.reuse_hits`` metrics through the observability layer.
"""

from __future__ import annotations

import threading
import time
import weakref
import zlib
from collections import OrderedDict

import numpy as np

from ..config import iter_blocks
from ..errors import MemoryBudgetError, ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from ..select.vectorized import ArenaNeighborLists, BatchedNeighborLists
from ..validation import as_coordinate_table, as_index_array, check_finite, check_k
from .arena import ArenaPool, NullArena
from .membudget import MemoryBudget
from .gsknn import (
    GsknnStats,
    _apply_blocking,
    _reference_block,
    _resolve_auto_variant,
)
from .microkernel import finalize_tile
from .neighbors import KnnResult, merge_neighbor_lists_fast
from .norm_cache import array_fingerprint
from .norms import Norm, pairwise_block, resolve_norm, squared_norms
from .variants import Variant, VARIANT_INFO

__all__ = ["GsknnPlan", "PlanCache"]


class GsknnPlan:
    """Reusable execution state for kNN queries against a fixed reference set.

    Parameters
    ----------
    X:
        ``(N, d)`` coordinate table. The plan holds a reference; mutating
        it in place between executes is detected (content fingerprint)
        and triggers a panel rebuild.
    r_idx:
        Global indices of the ``n`` reference points — fixed for the
        plan's lifetime.
    norm, variant, X2, block_m, block_n, blocking:
        Exactly as :func:`repro.core.gsknn.gsknn`. ``variant`` is the
        *spec* (``"auto"``/``"model"``/``"paper"``/1/5/6); resolution
        happens per execute and is memoized per ``(m, k)``.
    arena_pool:
        Workspace pool shared with other plans (a :class:`PlanCache`
        passes one pool to all its plans so tile buffers are shared).
        Defaults to a private pool.
    cache_panels:
        Gather the reference panels at construction (default). ``False``
        gathers lazily per block on every execute — the ephemeral
        one-shot configuration, preserving that path's memory profile.
    memory_budget:
        A :class:`~repro.core.membudget.MemoryBudget` (or byte count /
        spec like ``"64MiB"``) capping the plan's workspace. A budgeted
        plan charges every arena buffer against the cap, *streams*
        reference panels per-tile from ``X`` (a memmap works unchanged —
        this is the out-of-core path, one sequential read per pass)
        whenever caching them whole would eat more than half the
        budget, and refuses Var#6 when its full scores matrix cannot
        fit. Streamed and cached executions are bit-identical at equal
        block sizes. See docs/MEMORY.md.
    track_staleness:
        Fingerprint ``X`` on every execute and rebuild cached panels on
        mismatch (default). The check is O(d); see
        :func:`repro.core.norm_cache.array_fingerprint` for what it can
        and cannot catch.
    """

    def __init__(
        self,
        X: np.ndarray,
        r_idx: np.ndarray,
        *,
        norm: str | float | Norm = "l2",
        variant: int | str | Variant = "auto",
        X2: np.ndarray | None = None,
        block_m: int = 1024,
        block_n: int = 2048,
        blocking: str | object | None = None,
        arena_pool: ArenaPool | None = None,
        cache_panels: bool = True,
        track_staleness: bool = True,
        validate: bool = True,
        memory_budget: MemoryBudget | int | str | None = None,
    ) -> None:
        if validate:
            X = as_coordinate_table(X)
            check_finite(X)
            r_idx = as_index_array(r_idx, X.shape[0], name="r_idx")
        else:
            r_idx = np.asarray(r_idx, dtype=np.intp)
        self.X = X
        self.r_idx = r_idx
        self.norm = resolve_norm(norm)
        self._variant_spec = variant
        block_m, block_n, tuned_switch_k = _apply_blocking(
            blocking, block_m, block_n
        )
        if block_m < 1 or block_n < 1:
            raise ValidationError("block_m and block_n must be >= 1")
        self.block_m = int(block_m)
        self.block_n = int(block_n)
        self._switch_k = tuned_switch_k
        if X2 is not None and (self.norm.is_l2 or self.norm.is_cosine):
            X2 = np.asarray(X2, dtype=np.float64)
            if X2.shape != (X.shape[0],):
                raise ValidationError(
                    f"X2 must have shape ({X.shape[0]},), got {X2.shape}"
                )
        else:
            # the kernel contract: X2 is ignored for non-l2 norms
            X2 = X2 if (self.norm.is_l2 or self.norm.is_cosine) else None
        self.X2 = X2
        self.memory_budget = MemoryBudget.coerce(memory_budget)
        if arena_pool is None:
            arena_pool = (
                ArenaPool(budget=self.memory_budget)
                if self.memory_budget is not None
                else ArenaPool()
            )
        self.arena_pool = arena_pool
        cache_panels = bool(cache_panels)
        if cache_panels and self.memory_budget is not None:
            # Cache panels whole only when they leave at least half the
            # budget for tiles/lists; otherwise stream them per-block
            # from X inside the pass loop (the out-of-core mode — the
            # fused kernel packs panels once per pass, so streaming
            # costs one sequential read per pass, nothing hot).
            needs_norms = self.norm.is_l2 or self.norm.is_cosine
            panel_nbytes = int(self.r_idx.size) * (
                self.X.shape[1] + (1 if needs_norms else 0)
            ) * 8
            if 2 * panel_nbytes > self.memory_budget.limit_bytes:
                cache_panels = False
                registry = _get_registry()
                if registry.enabled:
                    registry.inc("budget.panels_streamed")
        if self.memory_budget is not None:
            self.block_m, self.block_n = self._fit_blocks(
                self.block_m, self.block_n
            )
        self._cache_panels = cache_panels
        self._track_staleness = bool(track_staleness)
        self._panels: list | None = None
        self._panels_nbytes = 0
        self._fingerprint: tuple | None = None
        self._variant_memo: dict[tuple[int, int], Variant] = {}
        self._lock = threading.Lock()
        self._executes = 0
        self.stale_rebuilds = 0
        self._prev: tuple[np.ndarray, int, KnnResult] | None = None
        if self._cache_panels:
            self._build()

    # -- derived shape ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self.r_idx.size

    @property
    def d(self) -> int:
        return self.X.shape[1]

    @property
    def panels_cached(self) -> bool:
        return self._panels is not None

    @property
    def streams_panels(self) -> bool:
        """True when reference panels are gathered per-tile per-execute."""
        return not self._cache_panels

    # -- budget fitting --------------------------------------------------------

    def _fit_blocks(self, block_m: int, block_n: int) -> tuple[int, int]:
        """Shrink block sizes until one pass's tile state fits the budget.

        The per-pass footprint a block size controls — the distance tile,
        its survivor mask, and (when streaming) the gathered ``(Rc, R2c)``
        panel — must fit *half* the budget; the other half is headroom
        for the O(m) query-side state (gathered rows, neighbor lists)
        that no block size can shrink. Halves the larger dimension first,
        never below 64: results stay exact at any block size, only GEMM
        efficiency trades down. Callers comparing runs bit-for-bit
        should read the fitted sizes back from ``plan.block_m`` /
        ``plan.block_n``.
        """
        share = self.memory_budget.limit_bytes // 2
        d = self.X.shape[1]

        def per_pass(bm: int, bn: int) -> int:
            tile = bm * bn * 9  # float64 tile + bool survivor mask
            stream = bn * (d + 1) * 8  # gathered Rc + R2c
            return tile + stream

        fitted_m, fitted_n = int(block_m), int(block_n)
        while per_pass(fitted_m, fitted_n) > share and (
            fitted_m > 64 or fitted_n > 64
        ):
            if fitted_n >= fitted_m and fitted_n > 64:
                fitted_n //= 2
            else:
                fitted_m //= 2
        fitted_m, fitted_n = max(fitted_m, 1), max(fitted_n, 1)
        if (fitted_m, fitted_n) != (block_m, block_n):
            registry = _get_registry()
            if registry.enabled:
                registry.inc("budget.block_autofits")
        return fitted_m, fitted_n

    # -- build / invalidation --------------------------------------------------

    def _build(self) -> None:
        """Gather and cache the 6th loop's reference panels."""
        registry = _get_registry()
        with _trace.span(
            "plan.build", n=self.n, d=self.d, block_n=self.block_n
        ):
            panels = []
            panel_nbytes = 0
            for j_c, n_b in iter_blocks(self.n, self.block_n):
                r_block = self.r_idx[j_c : j_c + n_b]
                Rc, R2c = _reference_block(self.X, r_block, self.norm, self.X2)
                panels.append((j_c, n_b, r_block, Rc, R2c))
                panel_nbytes += Rc.nbytes + (
                    R2c.nbytes if R2c is not None else 0
                )
            fingerprint = (
                array_fingerprint(self.X) if self._track_staleness else None
            )
        with self._lock:
            if self.memory_budget is not None:
                if self._panels_nbytes:
                    self.memory_budget.release(self._panels_nbytes)
                    self._panels_nbytes = 0
                self.memory_budget.reserve(panel_nbytes, site="plan.panels")
                self._panels_nbytes = panel_nbytes
            self._panels = panels
            self._fingerprint = fingerprint
            self._prev = None  # panels changed: the previous result is void
        if registry.enabled:
            registry.inc("plan.builds")

    def release(self) -> None:
        """Drop cached panels and return their bytes to the budget.

        A released plan stays usable — panels are simply re-gathered
        per block on later executes. :class:`PlanCache` calls this on
        eviction so a budgeted plan's charge never outlives its cache
        entry.
        """
        with self._lock:
            if self.memory_budget is not None and self._panels_nbytes:
                self.memory_budget.release(self._panels_nbytes)
                self._panels_nbytes = 0
            self._panels = None
            self._prev = None

    def _maybe_rebuild(self, registry) -> None:
        """Rebuild cached panels when ``X``'s content fingerprint moved."""
        if self._panels is None or self._fingerprint is None:
            return
        if array_fingerprint(self.X) == self._fingerprint:
            return
        self.stale_rebuilds += 1
        if registry.enabled:
            registry.inc("plan.stale_rebuilds")
        self._build()

    # -- variant resolution ----------------------------------------------------

    def _resolve_variant(
        self, m: int, k: int, variant: int | str | Variant | None
    ) -> Variant:
        spec = self._variant_spec if variant is None else variant
        memo_key = (m, k) if variant is None else None
        if memo_key is not None:
            memo = self._variant_memo.get(memo_key)
            if memo is not None:
                return memo
        var = _resolve_auto_variant(
            spec, m, self.n, self.d, k, switch_k=self._switch_k
        )
        if var not in (Variant.VAR1, Variant.VAR5, Variant.VAR6):
            raise ValidationError(
                f"Var#{int(var)} is not executable: {VARIANT_INFO[var].notes}"
            )
        if self.memory_budget is not None:
            var = self._budget_variant(var, m, spec)
        if memo_key is not None:
            self._variant_memo[memo_key] = var
        return var

    def _budget_variant(
        self, var: Variant, m: int, spec: int | str | Variant
    ) -> Variant:
        """Veto Var#6 when its intermediates cannot fit the budget.

        Var#6 materializes the full (m, n) scores matrix plus an
        equally-sized argpartition index array — ``2 m n 8`` bytes no
        budget-aware blocking can shrink. An *inferred* choice (spec
        was ``"auto"``/``"model"``/``"paper"``) is deflected to the
        blocked Var#1, which computes the same answer in O(block) space;
        an explicit ``variant=6`` is refused.
        """
        if var is not Variant.VAR6:
            return var
        var6_nbytes = 2 * m * self.n * 8
        if var6_nbytes <= self.memory_budget.limit_bytes:
            return var
        explicit = not (
            isinstance(spec, str)
            and spec.lower() in ("auto", "model", "paper")
        )
        if explicit:
            raise MemoryBudgetError(
                f"variant 6 needs ~{var6_nbytes} bytes for its "
                f"(m={m}, n={self.n}) scores matrix, over the "
                f"{self.memory_budget.limit_bytes}-byte budget; "
                "use variant 1/5 or raise the budget",
                limit=self.memory_budget.limit_bytes,
                requested=var6_nbytes,
                used=self.memory_budget.used_bytes,
                site="plan.variant#6",
            )
        registry = _get_registry()
        if registry.enabled:
            registry.inc("budget.variant_downgrades")
        return Variant.VAR1

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        q_idx: np.ndarray,
        k: int,
        *,
        initial: KnnResult | None = None,
        warm_start: bool = True,
        variant: int | str | Variant | None = None,
        select: str = "masked",
        return_stats: bool = False,
        validate: bool = True,
    ) -> KnnResult | tuple[KnnResult, GsknnStats]:
        """Solve ``k`` nearest neighbors of ``X[q_idx]`` among the plan's refs.

        With ``warm_start`` (default), a repeat of the previous call's
        exact ``(q_idx, k)`` reuses its result to seed the root filter —
        lossless, and when nothing in the reference set beats it the
        call returns without selection work. Pass ``initial`` to seed
        from caller-held lists instead (the kernel's update semantics).
        ``select="legacy"`` forces the historical unmasked selection.
        """
        if select not in ("masked", "legacy"):
            raise ValidationError(
                f"select must be 'masked' or 'legacy', got {select!r}"
            )
        if validate:
            q_idx = as_index_array(q_idx, self.X.shape[0], name="q_idx")
            k = check_k(k, self.r_idx.size)
            if initial is not None and initial.distances.shape != (
                q_idx.size,
                k,
            ):
                raise ValidationError(
                    f"initial lists must be shape ({q_idx.size}, {k}), got "
                    f"{initial.distances.shape}"
                )
        else:
            q_idx = np.asarray(q_idx, dtype=np.intp)
        registry = _get_registry()
        if self._track_staleness:
            self._maybe_rebuild(registry)
        auto_warm = False
        if initial is None and warm_start:
            with self._lock:
                prev = self._prev
            if (
                prev is not None
                and prev[1] == k
                and prev[0].shape == q_idx.shape
                and np.array_equal(prev[0], q_idx)
            ):
                initial = prev[2]
                auto_warm = True
        var = self._resolve_variant(q_idx.size, k, variant)
        m = q_idx.size
        stats = GsknnStats(variant=var, m=m, n=self.n, d=self.d)
        with self._lock:
            first = self._executes == 0
            self._executes += 1
        t0 = time.perf_counter()
        with _trace.span(
            "plan.execute",
            variant=int(var),
            m=m,
            n=self.n,
            d=self.d,
            k=k,
            warm=initial is not None,
        ):
            with self.arena_pool.borrow() as arena:
                result = self._execute_impl(
                    q_idx, k, var, initial, select, arena, stats
                )
        if warm_start:
            with self._lock:
                self._prev = (np.array(q_idx, copy=True), k, result)
        if registry.enabled:
            registry.inc("plan.executes")
            if not first:
                registry.inc("plan.reuse_hits")
            if auto_warm:
                registry.inc("plan.warm_starts")
            from ..obs.adapters import absorb_gsknn_stats
            from ..obs.efficiency import record_solve_efficiency

            absorb_gsknn_stats(stats, registry)
            record_solve_efficiency(
                m, self.n, self.d, k, int(var),
                time.perf_counter() - t0,
                scope="kernel", registry=registry,
            )
        if return_stats:
            return result, stats
        return result

    def execute_rows(
        self,
        Q: np.ndarray,
        k: int,
        *,
        variant: int | str | Variant | None = None,
        select: str = "masked",
        return_stats: bool = False,
        validate: bool = True,
    ) -> KnnResult | tuple[KnnResult, GsknnStats]:
        """Solve ``k`` nearest neighbors of *literal query rows* ``Q``.

        The serving front-end's path for requests that carry query
        coordinates instead of table indices (the production shape: the
        query embedding is usually not a row of the reference table).
        Everything the plan amortizes — cached reference panels, the
        norm side table, blocking and variant resolution, the workspace
        arena — is reused; only the query gather is replaced by the
        caller-provided ``(m, d)`` rows. No warm-start: row identity is
        not tracked across calls.
        """
        if select not in ("masked", "legacy"):
            raise ValidationError(
                f"select must be 'masked' or 'legacy', got {select!r}"
            )
        Q = np.ascontiguousarray(np.asarray(Q), dtype=np.float64)
        if validate:
            if Q.ndim != 2 or Q.shape[1] != self.d:
                raise ValidationError(
                    f"Q must be 2-D with {self.d} columns to match the "
                    f"plan's table, got shape {Q.shape}"
                )
            if Q.shape[0] == 0:
                raise ValidationError("Q must have at least one query row")
            check_finite(Q, name="Q")
            k = check_k(k, self.r_idx.size)
        registry = _get_registry()
        if self._track_staleness:
            self._maybe_rebuild(registry)
        m = Q.shape[0]
        var = self._resolve_variant(m, k, variant)
        stats = GsknnStats(variant=var, m=m, n=self.n, d=self.d)
        with self._lock:
            first = self._executes == 0
            self._executes += 1
        t0 = time.perf_counter()
        with _trace.span(
            "plan.execute",
            variant=int(var),
            m=m,
            n=self.n,
            d=self.d,
            k=k,
            warm=False,
            rows=True,
        ):
            with self.arena_pool.borrow() as arena:
                if self.norm.is_l2 or self.norm.is_cosine:
                    Q2 = squared_norms(Q)
                else:
                    Q2 = None
                result = self._dispatch(
                    Q, Q2, k, var, None, select, arena, stats
                )
        if registry.enabled:
            registry.inc("plan.executes")
            registry.inc("plan.row_executes")
            if not first:
                registry.inc("plan.reuse_hits")
            from ..obs.adapters import absorb_gsknn_stats
            from ..obs.efficiency import record_solve_efficiency

            absorb_gsknn_stats(stats, registry)
            record_solve_efficiency(
                m, self.n, self.d, k, int(var),
                time.perf_counter() - t0,
                scope="kernel", registry=registry,
            )
        if return_stats:
            return result, stats
        return result

    def _execute_impl(
        self,
        q_idx: np.ndarray,
        k: int,
        var: Variant,
        initial: KnnResult | None,
        select: str,
        arena,
        stats: GsknnStats,
    ) -> KnnResult:
        """The loop nest shared by plan executes and one-shot kernel calls.

        Emits the kernel's span tree (``pack``/``rank_update``/``heap``);
        the caller owns the root span (``gsknn`` or ``plan.execute``).
        """
        X, norm, X2 = self.X, self.norm, self.X2
        m = q_idx.size
        panels = self._panels
        if (
            select != "legacy"
            and panels is not None
            and len(panels) == 1
            and m == self.n
            and (q_idx is self.r_idx or np.array_equal(q_idx, self.r_idx))
        ):
            # Self-join fast path (the tree solver's groups query
            # themselves): the cached reference panel IS the gathered
            # query block, and its norm side table was computed with the
            # same einsum — reuse both, bit-identically, gather-free.
            with _trace.span("pack", which="Q", rows=m, cached=True):
                Q, Q2 = panels[0][3], panels[0][4]
            return self._dispatch(Q, Q2, k, var, initial, select, arena, stats)
        with _trace.span("pack", which="Q", rows=m):
            if select == "legacy":
                Q = X[q_idx]
            else:
                Q = arena.take_c("Q", (m, X.shape[1]), np.float64)
                np.take(X, q_idx, axis=0, out=Q)
            if norm.is_l2 or norm.is_cosine:
                if X2 is not None:
                    Q2 = X2[q_idx]
                elif select == "legacy":
                    Q2 = squared_norms(Q)
                else:
                    Q2 = arena.take_c("Q2", (m,), np.float64)
                    np.einsum("ij,ij->i", Q, Q, out=Q2)
            else:
                Q2 = None
        return self._dispatch(Q, Q2, k, var, initial, select, arena, stats)

    def _dispatch(
        self,
        Q: np.ndarray,
        Q2: np.ndarray | None,
        k: int,
        var: Variant,
        initial: KnnResult | None,
        select: str,
        arena,
        stats: GsknnStats,
    ) -> KnnResult:
        if var is Variant.VAR6:
            result = self._run_var6(Q, Q2, k, stats, arena)
            shortcut = False
        else:
            result, shortcut = self._run_blocked(
                Q, Q2, k, var is Variant.VAR1, initial, select, arena, stats
            )
        if initial is not None and not shortcut:
            with _trace.span("heap", stage="warm_merge"):
                result = merge_neighbor_lists_fast(result, initial)
        return result

    def _iter_panels(self, arena=None):
        """Yield ``(j_c, n_b, r_block, Rc, R2c)`` — cached, gathered, or streamed.

        A budgeted plan with a real arena *streams*: each pass's panels
        are gathered into two reusable arena buffers (``np.take`` /
        ``einsum`` with ``out=``), so a memmapped table is read one
        sequential panel at a time and steady-state executes allocate
        nothing. The gather math is element-for-element the fancy-index
        path's, so streamed results stay bit-identical.
        """
        if self._panels is not None:
            for j_c, n_b, r_block, Rc, R2c in self._panels:
                with _trace.span(
                    "pack", which="R", rows=n_b, j_c=j_c, cached=True
                ):
                    pass
                yield j_c, n_b, r_block, Rc, R2c
            return
        stream = (
            self.memory_budget is not None
            and arena is not None
            and not isinstance(arena, NullArena)
        )
        needs_norms = self.norm.is_l2 or self.norm.is_cosine
        for j_c, n_b in iter_blocks(self.n, self.block_n):
            r_block = self.r_idx[j_c : j_c + n_b]
            with _trace.span(
                "pack", which="R", rows=n_b, j_c=j_c, streamed=stream
            ):
                if stream:
                    Rc = arena.take_c("Rc", (n_b, self.d), np.float64)
                    np.take(self.X, r_block, axis=0, out=Rc)
                    if not needs_norms:
                        R2c = None
                    elif self.X2 is not None:
                        R2c = self.X2[r_block]
                    else:
                        R2c = arena.take_c("R2c", (n_b,), np.float64)
                        np.einsum("ij,ij->i", Rc, Rc, out=R2c)
                else:
                    Rc, R2c = _reference_block(
                        self.X, r_block, self.norm, self.X2
                    )
            yield j_c, n_b, r_block, Rc, R2c

    def _run_blocked(
        self,
        Q: np.ndarray,
        Q2: np.ndarray | None,
        k: int,
        use_filter: bool,
        initial: KnnResult | None,
        select: str,
        arena,
        stats: GsknnStats,
    ) -> tuple[KnnResult, bool]:
        """Var#1 (root-filtered) / Var#5 (slab) fused path.

        Returns ``(result, merged)`` where ``merged`` means ``result``
        already accounts for ``initial`` (the warm zero-survivor fast
        path fired, or the seed was folded into the lists) and must not
        be merged with it again.
        """
        m = Q.shape[0]
        if select == "legacy":
            lists = BatchedNeighborLists(m, k)
        else:
            lists = ArenaNeighborLists(m, k, arena)
        folded = False
        if use_filter and initial is not None:
            finite = np.isfinite(initial.distances)
            if select != "legacy" and finite.all():
                # Fold the seed into the lists themselves: every update
                # then merges candidates directly against it (with id
                # dedup), and the final warm-merge pass disappears.
                lists.seed(initial.distances, initial.indices)
                folded = True
            elif select != "legacy" and not finite.any():
                # an empty seed (all +inf) can never change the answer;
                # skip the identity merge too
                folded = True
            else:
                warm = initial.distances.max(axis=1)
                lists.row_max[:] = warm
                # mark warm rows touched so the min-pass filter engages
                # at once
                lists._touched[:] = np.isfinite(warm)
        if not use_filter:
            # Var#5 semantics: every slab is merged wholesale (no register-
            # level early discard). Disable the filter by keeping row_max at
            # +inf — updates then always merge.
            lists.row_max[:] = np.inf

        for j_c, n_b, r_block, Rc, R2c in self._iter_panels(arena):  # 6th loop
            for i_c, m_b in iter_blocks(m, self.block_m):  # 4th loop
                q2c = Q2[i_c : i_c + m_b] if Q2 is not None else None
                with _trace.span("rank_update", rows=m_b, cols=n_b):
                    if select == "legacy":
                        tile = pairwise_block(
                            Q[i_c : i_c + m_b], Rc, self.norm, q2c, R2c
                        )
                    else:
                        tile = self._tile_into_arena(
                            Q[i_c : i_c + m_b], q2c, Rc, R2c, arena
                        )
                stats.blocks += 1
                with _trace.span("heap", rows=m_b, cols=n_b):
                    lists.update(i_c, tile, r_block)
                if not use_filter:
                    # keep Var#5 merging unconditionally on later blocks too
                    lists.row_max[i_c : i_c + m_b] = np.inf
        stats.candidates_offered = lists.stats.candidates_offered
        stats.candidates_discarded = (
            lists.stats.candidates_offered - lists.stats.candidates_surviving
        )
        if (
            select != "legacy"
            and use_filter
            and initial is not None
            and lists.stats.rows_merged == 0
            and not lists._seed_dirty
            and initial.is_sorted()
        ):
            # Warm zero-survivor fast path: no candidate anywhere beat the
            # seeded thresholds, so the merged answer IS the initial lists —
            # skip the final sort and the merge entirely. Returned arrays
            # are fresh copies so callers never alias their own input.
            registry = _get_registry()
            if registry.enabled:
                registry.inc("plan.unchanged_returns")
            return (
                KnnResult(
                    initial.distances.copy(), initial.indices.copy()
                ),
                True,
            )
        with _trace.span("heap", stage="final_sort"):
            dist, idx = lists.sorted()
        return KnnResult(dist, idx), folded

    def _run_var6(
        self,
        Q: np.ndarray,
        Q2: np.ndarray | None,
        k: int,
        stats: GsknnStats,
        arena,
    ) -> KnnResult:
        """Var#6: materialize the full ``m x n`` matrix, select at the end."""
        m, n = Q.shape[0], self.n
        r_idx = self.r_idx
        if n <= self.block_n:
            # single slab: the block's distance matrix IS the full C — skip
            # the copy into a preallocated buffer
            if self._panels is not None:
                _, _, _, Rc, R2c = self._panels[0]
                with _trace.span("pack", which="R", rows=n, cached=True):
                    pass
            else:
                with _trace.span("pack", which="R", rows=n):
                    Rc, R2c = _reference_block(self.X, r_idx, self.norm, self.X2)
            with _trace.span("rank_update", rows=m, cols=n):
                C = pairwise_block(Q, Rc, self.norm, Q2, R2c)
            stats.blocks = 1
        else:
            if self.memory_budget is not None:
                # route the scores matrix through the arena so its bytes
                # are charged (and the variant guard already vetoed any
                # (m, n) that cannot fit)
                C = arena.take_c("var6_scores", (m, n), np.float64)
            else:
                C = np.empty((m, n), dtype=np.float64)
            for j_c, n_b, r_block, Rc, R2c in self._iter_panels(arena):
                with _trace.span("rank_update", rows=m, cols=n_b):
                    C[:, j_c : j_c + n_b] = pairwise_block(
                        Q, Rc, self.norm, Q2, R2c
                    )
                stats.blocks += 1
        stats.candidates_offered = m * n

        with _trace.span("heap", stage="full_select", rows=m, cols=n):
            if k < n:
                part = np.argpartition(C, k - 1, axis=1)[:, :k]
            else:
                part = np.broadcast_to(np.arange(n), (m, n)).copy()
            rows = np.arange(m)[:, None]
            dist = C[rows, part]
            order = np.argsort(dist, axis=1, kind="stable")
            return KnnResult(dist[rows, order], r_idx[part[rows, order]])

    def _tile_into_arena(
        self,
        Qb: np.ndarray,
        q2c: np.ndarray | None,
        Rc: np.ndarray,
        R2c: np.ndarray | None,
        arena,
    ) -> np.ndarray:
        """One block's distances, written into arena buffers.

        Operation-for-operation the same floating-point sequence as
        :func:`repro.core.norms.pairwise_block` — only the destination
        changes — so plan results stay bit-identical to the one-shot
        path.
        """
        norm = self.norm
        m_b, n_b = Qb.shape[0], Rc.shape[0]
        T = arena.take_c("tile", (m_b, n_b), np.float64)
        if norm.is_l2:
            np.matmul(Qb, Rc.T, out=T)
            np.multiply(T, -2.0, out=T)
            np.add(T, q2c[:, None], out=T)
            np.add(T, R2c[None, :], out=T)
            np.maximum(T, 0.0, out=T)
            return T
        if norm.is_cosine:
            D = arena.take_c("denom", (m_b, n_b), np.float64)
            np.multiply(q2c[:, None], R2c[None, :], out=D)
            np.maximum(D, 0.0, out=D)
            np.sqrt(D, out=D)
            np.matmul(Qb, Rc.T, out=T)
            with np.errstate(divide="ignore", invalid="ignore"):
                np.divide(T, D, out=T)
            Z = arena.take_c("denom_zero", (m_b, n_b), np.bool_)
            np.less_equal(D, 0.0, out=Z)
            T[Z] = 0.0
            np.clip(T, -1.0, 1.0, out=T)
            np.subtract(1.0, T, out=T)
            return T
        # General lp: the O(m_b n_b d) broadcast differences stay ephemeral
        # (matching the one-shot path's footprint); only the reduced tile
        # lives in the arena, finalized in place via finalize_tile's out=
        # path (which eliminates the l1/l-inf copy).
        diff = np.abs(Qb[:, None, :] - Rc[None, :, :])
        if norm.is_linf:
            np.max(diff, axis=2, out=T)
        elif norm.p == 1.0:
            np.sum(diff, axis=2, out=T)
        else:
            np.sum(np.power(diff, norm.p), axis=2, out=T)
        return finalize_tile(T, None, None, norm, out=T)


class PlanCache:
    """LRU cache of :class:`GsknnPlan` keyed by table identity + ``r_idx`` content.

    The drivers' entry point for plan reuse: ``get`` returns an existing
    plan when the same coordinate table object and the same reference
    index content (CRC-keyed, then verified with ``np.array_equal`` so a
    hash collision can never alias two reference sets) were seen before,
    and builds one otherwise. All plans share one workspace
    :class:`~repro.core.arena.ArenaPool`, so even cache *misses* reuse
    tile buffers. Cached plans hold strong references to their tables —
    an entry's ``id(X)`` therefore cannot be recycled while it lives.
    """

    def __init__(
        self, max_plans: int = 16, arena_pool: ArenaPool | None = None
    ) -> None:
        if max_plans < 1:
            raise ValidationError(f"max_plans must be >= 1, got {max_plans}")
        self.max_plans = int(max_plans)
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, GsknnPlan] = OrderedDict()
        self._pool = arena_pool if arena_pool is not None else ArenaPool()
        # tables already validated (finite, 2-D float) by an earlier plan
        # construction — repeated misses against the same table (distinct
        # groups, as in the tree solver) skip the O(N d) finiteness scan.
        # Weakrefs guard against id() recycling: a dead entry revalidates.
        self._validated_tables: dict[tuple, weakref.ref] = {}

    @staticmethod
    def _blocking_key(blocking):
        if blocking is None:
            return None
        if isinstance(blocking, str):
            return blocking.lower()
        try:
            return (
                int(blocking.block_m),
                int(blocking.block_n),
                int(blocking.switch_k),
            )
        except AttributeError:
            raise ValidationError(
                f"blocking must be 'tuned', 'default', None, or a "
                f"TunedConfig, got {blocking!r}"
            ) from None

    def get(
        self,
        X: np.ndarray,
        r_idx: np.ndarray,
        *,
        norm: str | float | Norm = "l2",
        variant: int | str | Variant = "auto",
        X2: np.ndarray | None = None,
        block_m: int = 1024,
        block_n: int = 2048,
        blocking: str | object | None = None,
        memory_budget: MemoryBudget | int | str | None = None,
    ) -> GsknnPlan:
        r = np.asarray(r_idx, dtype=np.intp)
        norm_obj = resolve_norm(norm)
        var_key = variant.lower() if isinstance(variant, str) else int(variant)
        budget = MemoryBudget.coerce(memory_budget)
        key = (
            id(X),
            np.asarray(X).shape,
            norm_obj,
            var_key,
            int(r.size),
            zlib.crc32(np.ascontiguousarray(r).tobytes()),
            int(block_m),
            int(block_n),
            self._blocking_key(blocking),
            None if budget is None else budget.limit_bytes,
        )
        registry = _get_registry()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                if plan.X is X and np.array_equal(plan.r_idx, r):
                    self._plans.move_to_end(key)
                    if registry.enabled:
                        registry.inc("plan.cache_hits")
                    return plan
                del self._plans[key]
            table_token = (id(X), np.asarray(X).shape)
            known = self._validated_tables.get(table_token)
            validate = known is None or known() is not X
        if not validate:
            # the table is known good; the group indices still need their
            # (cheap) bounds check
            r = as_index_array(r, np.asarray(X).shape[0], name="r_idx")
        plan = GsknnPlan(
            X,
            r,
            norm=norm_obj,
            variant=variant,
            X2=X2,
            block_m=block_m,
            block_n=block_n,
            blocking=blocking,
            # a budgeted plan gets its own budget-charging pool — the
            # shared pool's arenas are uncapped by design
            arena_pool=self._pool if budget is None else None,
            validate=validate,
            memory_budget=budget,
        )
        with self._lock:
            if len(self._validated_tables) > 256:
                self._validated_tables = {
                    tok: wr
                    for tok, wr in self._validated_tables.items()
                    if wr() is not None
                }
            self._validated_tables[table_token] = weakref.ref(plan.X)
        if registry.enabled:
            registry.inc("plan.cache_misses")
        evicted = []
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                evicted.append(self._plans.popitem(last=False)[1])
        for old in evicted:
            if old.memory_budget is not None:
                # return the evicted plan's cached-panel bytes to its
                # budget; the plan itself stays usable (uncached path)
                old.release()
        return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            dropped = list(self._plans.values())
            self._plans.clear()
            self._validated_tables.clear()
        for old in dropped:
            if old.memory_budget is not None:
                old.release()
