"""Serving-layer configuration: one validated knob surface.

Every policy the front-end applies — how long a coalescing window may
stay open, how many requests fuse into one solve, when admission starts
shedding, what the default per-request SLO is, how tenants are weighted
against each other — lives here, so a deployment is one dataclass
instead of a constellation of keyword arguments. Validation happens at
construction: a service never starts with an incoherent config.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of a :class:`~repro.serve.service.KnnQueryService`.

    Attributes
    ----------
    max_batch:
        Most requests one fused solve may serve. The coalescing window
        closes as soon as this many are in hand.
    max_batch_rows:
        Cap on total query *rows* per fused solve (requests carry
        multi-row ``q_idx``); protects the kernel from a pathological
        window where a few huge requests build an enormous fused panel.
    max_wait_ms:
        Hard upper bound on how long the first request of a window may
        wait for company before the batch is dispatched. The
        model-informed policy may close the window earlier; it can
        never hold it open longer.
    max_queue_depth:
        Admission bound: total requests queued (not yet dispatched)
        across all tenants. At the bound, :meth:`submit` sheds with
        :class:`~repro.errors.OverloadError` instead of queueing into
        collapse.
    slo_ms:
        Default per-request deadline in milliseconds, applied when the
        caller does not pass one. ``None`` means no default (requests
        without an explicit deadline are unbounded).
    tenant_weights:
        Weighted-round-robin dequeue weights; a tenant absent from the
        map gets :attr:`default_weight`. Weights are relative shares of
        each coalescing window, not hard quotas — an idle tenant's
        share flows to the busy ones.
    default_weight:
        Weight for tenants not named in :attr:`tenant_weights`.
    p, backend:
        Worker count and execution backend for the fused
        :func:`~repro.core.batch.gsknn_batch` solve (``"threads"`` or
        ``"serial"``). One core serves well with the defaults; the
        threads backend overlaps distinct-``k`` groups on bigger hosts.
    plan_cache_size:
        Entries in the service-owned :class:`~repro.core.plan.PlanCache`
        (distinct reference sets the server keeps warm).
    policy:
        ``"model"`` grows the coalescing window only while the
        :class:`~repro.model.PerformanceModel` predicts batching still
        pays (see :mod:`repro.serve.policy`); ``"fixed"`` always waits
        the full ``max_wait_ms`` unless ``max_batch`` fills first.
    drain_on_stop:
        Whether :meth:`~repro.serve.service.KnnQueryService.stop`
        finishes queued requests (default) or fails them.
    default_recall_target:
        Recall target applied to requests that do not pass one.
        ``None`` (the default) means requests without an explicit
        target are always solved exactly — approximate serving is
        strictly opt-in.
    approx_ef, approx_expand:
        Beam-search pool width and per-hop expansion used for
        approximate windows when the planner's calibrated operating
        point does not dictate its own (e.g. an injected planner with
        bare decisions).
    recall_sample_every:
        Every Nth approximate window, a few of its rows are re-solved
        exactly and the measured recall published on the
        ``approx.achieved_recall`` gauge — a running spot-check that
        the calibrated recall still holds in production. ``0``
        disables sampling.
    shards:
        ``0`` (default) keeps the single-process fused solve. ``>= 1``
        puts the reference table behind a
        :class:`~repro.shard.router.ShardedAllKnn` with that many
        shards: every coalesced exact window (index and row requests
        alike) is scatter/gathered across the shard workers,
        bit-identical to the unsharded solve. Approximate windows stay
        on the in-process graph index.
    shard_transport:
        ``"process"`` (long-lived worker processes over shared memory)
        or ``"local"`` (in-process shards; deterministic tests).
    memory_budget:
        Optional cap on fused-solve workspace — a byte count or a spec
        like ``"64MiB"`` (see :class:`~repro.MemoryBudget`). The
        service coerces it once and shares the budget object across
        every window, so the cap bounds the server's steady-state
        kernel workspace, not each window in isolation. Budgeted plans
        stream their reference panels, which is what lets a service
        mount a memmapped table larger than RAM (docs/MEMORY.md).
    """

    max_batch: int = 64
    max_batch_rows: int = 8192
    max_wait_ms: float = 2.0
    max_queue_depth: int = 256
    slo_ms: float | None = None
    tenant_weights: dict[str, int] = field(default_factory=dict)
    default_weight: int = 1
    p: int = 1
    backend: str = "serial"
    plan_cache_size: int = 8
    policy: str = "model"
    drain_on_stop: bool = True
    default_recall_target: float | None = None
    approx_ef: int = 32
    approx_expand: int = 4
    recall_sample_every: int = 32
    shards: int = 0
    shard_transport: str = "process"
    memory_budget: int | str | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_batch_rows < 1:
            raise ValidationError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if self.max_wait_ms < 0:
            raise ValidationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_queue_depth < 1:
            raise ValidationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.slo_ms is not None and not self.slo_ms > 0:
            raise ValidationError(
                f"slo_ms must be > 0 (or None), got {self.slo_ms}"
            )
        if self.default_weight < 1:
            raise ValidationError(
                f"default_weight must be >= 1, got {self.default_weight}"
            )
        for tenant, weight in self.tenant_weights.items():
            if int(weight) < 1:
                raise ValidationError(
                    f"tenant {tenant!r}: weight must be >= 1, got {weight}"
                )
        if self.backend not in ("threads", "serial"):
            raise ValidationError(
                f"backend must be 'threads' or 'serial', got {self.backend!r}"
            )
        if self.p < 1:
            raise ValidationError(f"p must be >= 1, got {self.p}")
        if self.plan_cache_size < 1:
            raise ValidationError(
                f"plan_cache_size must be >= 1, got {self.plan_cache_size}"
            )
        if self.policy not in ("model", "fixed"):
            raise ValidationError(
                f"policy must be 'model' or 'fixed', got {self.policy!r}"
            )
        if self.default_recall_target is not None and not (
            0.0 < self.default_recall_target <= 1.0
        ):
            raise ValidationError(
                "default_recall_target must be in (0, 1] or None, got "
                f"{self.default_recall_target}"
            )
        if self.approx_ef < 1:
            raise ValidationError(
                f"approx_ef must be >= 1, got {self.approx_ef}"
            )
        if self.approx_expand < 1:
            raise ValidationError(
                f"approx_expand must be >= 1, got {self.approx_expand}"
            )
        if self.recall_sample_every < 0:
            raise ValidationError(
                "recall_sample_every must be >= 0 (0 disables), got "
                f"{self.recall_sample_every}"
            )
        if self.shards < 0:
            raise ValidationError(
                f"shards must be >= 0 (0 = unsharded), got {self.shards}"
            )
        if self.shard_transport not in ("process", "local"):
            raise ValidationError(
                "shard_transport must be 'process' or 'local', got "
                f"{self.shard_transport!r}"
            )
        if self.memory_budget is not None:
            from ..core.membudget import parse_bytes

            parse_bytes(self.memory_budget)  # fail at construction, not dispatch

    def weight_of(self, tenant: str) -> int:
        return int(self.tenant_weights.get(tenant, self.default_weight))

    @property
    def max_wait_seconds(self) -> float:
        return self.max_wait_ms / 1e3

    @property
    def slo_seconds(self) -> float | None:
        return None if self.slo_ms is None else self.slo_ms / 1e3
