"""Task-parallel scheduling of many small kNN kernels.

Optimal multiprocessor scheduling is NP-complete, but with no
inter-task dependencies a greedy first-termination list schedule over a
descending-runtime-sorted task list (LPT — the "special case of
Graham's bound" the paper cites) is a 4/3 - 1/(3p) approximation. The
paper sorts kernels by *estimated* runtime from the §2.6 model and
assigns each to the processor with the smallest accumulated time; this
module reproduces that, and can execute the schedule on real threads.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ValidationError
from ..obs import trace as _trace
from ..obs.metrics import get_registry as _get_registry
from .chunking import resolve_workers

__all__ = ["ScheduledTask", "Schedule", "lpt_schedule", "graham_bound", "execute_schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One independent kernel invocation.

    ``estimate`` is the predicted runtime in seconds (typically
    :meth:`repro.model.PerformanceModel.estimate_kernel_runtime`);
    ``payload`` is whatever the executor needs to run it.
    """

    task_id: int
    estimate: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.estimate < 0:
            raise ValidationError(
                f"task {self.task_id}: estimate must be >= 0, got {self.estimate}"
            )


@dataclass
class Schedule:
    """Assignment of tasks to processors."""

    n_processors: int
    assignments: list[list[ScheduledTask]] = field(default_factory=list)

    @property
    def loads(self) -> list[float]:
        """Accumulated estimated runtime per processor."""
        return [sum(t.estimate for t in procs) for procs in self.assignments]

    @property
    def makespan(self) -> float:
        return max(self.loads) if self.assignments else 0.0

    @property
    def total_work(self) -> float:
        return sum(self.loads)

    @property
    def imbalance(self) -> float:
        """makespan / (total / p) — 1.0 is a perfect balance."""
        if self.total_work == 0:
            return 1.0
        return self.makespan / (self.total_work / self.n_processors)


def lpt_schedule(tasks: Sequence[ScheduledTask], p: int) -> Schedule:
    """Longest-processing-time-first list scheduling onto ``p`` processors.

    Tasks are sorted descending by estimate; each goes to the processor
    with the smallest accumulated load (a min-heap of loads).
    """
    if p < 1:
        raise ValidationError(f"need p >= 1 processors, got {p}")
    schedule = Schedule(p, [[] for _ in range(p)])
    if not tasks:
        return schedule
    with _trace.span("lpt_schedule", tasks=len(tasks), processors=p):
        # heap entries: (load, processor index) — ties broken by index
        loads = [(0.0, i) for i in range(p)]
        heapq.heapify(loads)
        for task in sorted(tasks, key=lambda t: -t.estimate):
            load, proc = heapq.heappop(loads)
            schedule.assignments[proc].append(task)
            heapq.heappush(loads, (load + task.estimate, proc))
    registry = _get_registry()
    if registry.enabled:
        from ..obs.adapters import absorb_schedule

        absorb_schedule(schedule, registry)
    return schedule


class _ExecutedCount:
    """Shared executed-task tally for deadline metadata (lane threads
    update it concurrently; a lock keeps the count honest)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def bump(self) -> None:
        with self._lock:
            self.value += 1


def graham_bound(p: int) -> float:
    """LPT's worst-case makespan ratio vs optimal: ``4/3 - 1/(3p)``."""
    if p < 1:
        raise ValidationError(f"need p >= 1 processors, got {p}")
    return 4.0 / 3.0 - 1.0 / (3.0 * p)


def execute_schedule(
    schedule: Schedule,
    run: Callable[[ScheduledTask], Any],
    *,
    backend: str | Any = "threads",
    deadline=None,
    retry=None,
    fault_plan=None,
) -> dict[int, Any]:
    """Execute a schedule on an execution backend; returns {task_id: result}.

    Each processor's task list runs sequentially, in assignment order —
    faithful to the static schedule rather than a work-stealing pool.
    ``backend`` is ``"threads"`` (default — on kernels that release the
    GIL during BLAS this gives true overlap), ``"serial"`` (in-process,
    for debugging and single-core determinism), or any
    :class:`~repro.parallel.backends.ExecutionBackend` whose generic
    ``map`` is implemented. The ``processes`` backend is rejected here:
    schedule payloads are arbitrary closures, and its zero-copy
    contract only covers GSKNN query chunks.

    Resilience: ``deadline`` (a :class:`~repro.resilience.Deadline` or a
    budget in seconds) is checked before every task — expiry raises
    :class:`~repro.errors.KernelTimeoutError` with executed/total task
    metadata. ``fault_plan`` (or ``$REPRO_FAULT_PLAN``) injects
    deterministic per-task faults, and ``retry`` (a
    :class:`~repro.resilience.RetryPolicy`, defaulted on when a fault
    plan is active) re-runs a failed task in place with backoff; the
    final attempt is fault-free so injection can never make a schedule
    unfinishable.
    """
    from ..resilience import Deadline, FaultPlan, RetryPolicy, is_retryable
    from .backends import resolve_backend

    engine = resolve_backend(backend, schedule.n_processors)
    results: dict[int, Any] = {}
    registry = _get_registry()
    deadline = Deadline.coerce(deadline)
    fault_plan = FaultPlan.coerce(fault_plan)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    if retry is None and fault_plan is not None:
        retry = RetryPolicy()
    total_tasks = sum(len(tasks) for tasks in schedule.assignments)
    executed = _ExecutedCount()

    def run_task(t: ScheduledTask) -> Any:
        attempts = retry.max_attempts if retry is not None else 1
        for attempt in range(attempts):
            if deadline is not None:
                deadline.check(
                    "schedule task", executed=executed.value, total=total_tasks
                )
            try:
                if fault_plan is not None and attempt < attempts - 1:
                    # the last attempt is always clean — injection
                    # exercises recovery, never permafailure
                    fault_plan.apply("task", t.task_id, attempt)
                return run(t)
            except Exception as exc:
                if attempt == attempts - 1 or not is_retryable(exc):
                    raise
                if registry.enabled:
                    registry.inc("resilience.retries")
                retry.sleep(attempt, deadline)
        raise AssertionError("unreachable")  # pragma: no cover

    # lanes run in pool threads with their own span stacks; capture the
    # caller's open span so each lane's "worker" span stays parented
    # under the driver instead of becoming a disconnected root
    tracer = _trace.get_tracer()
    schedule_span_id = tracer.current_span_id()

    def worker(tasks: list[ScheduledTask]) -> list[tuple[int, Any]]:
        out: list[tuple[int, Any]] = []
        with tracer.span_under(schedule_span_id, "worker", tasks=len(tasks)):
            for t in tasks:
                if registry.enabled:
                    t0 = time.perf_counter()
                    with _trace.span("task", task_id=t.task_id, estimate=t.estimate):
                        value = run_task(t)
                    registry.inc("sched.executed_tasks")
                    registry.observe(
                        "sched.task_seconds", time.perf_counter() - t0
                    )
                else:
                    with _trace.span("task", task_id=t.task_id, estimate=t.estimate):
                        value = run_task(t)
                executed.bump()
                out.append((t.task_id, value))
        return out

    lanes = [tasks for tasks in schedule.assignments if tasks]
    if not lanes:
        return results
    # one lane per processor with work; the shared resolver clamps the
    # pool so idle processors never cost a thread
    engine.p = resolve_workers(max(schedule.n_processors, 1), len(lanes))
    for chunk in engine.map(worker, lanes):
        for task_id, value in chunk:
            results[task_id] = value
    return results
