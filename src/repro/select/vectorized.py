"""Vectorized, batched neighbor-list maintenance — the numpy fast path.

The scalar heaps in :mod:`repro.select.heap` reproduce the paper's
per-query max-heap semantics exactly, but looping them per candidate from
Python would bury the algorithm in interpreter overhead. This module is
the numpy analogue GSKNN's fast path uses: all ``m`` query rows are
updated *as a batch* against a tile of candidate distances, with the two
ingredients the paper's fused kernel depends on preserved:

* **root filter / early discard** — a per-row threshold (the max retained
  distance, i.e. the heap root) lets whole rows of a candidate tile be
  rejected with one vectorized comparison and never stored;
* **O(k + n_b) update** — surviving rows merge their current list with the
  tile via ``np.argpartition`` (introselect), the vector analogue of
  streaming the tile through the heap.

Semantics are identical to per-row heap selection: after any sequence of
updates each row holds the k smallest (distance, id) pairs seen so far.
Ties are broken arbitrarily, exactly like the heap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError

__all__ = ["ArenaNeighborLists", "BatchedNeighborLists", "merge_block"]


def merge_block(
    values: np.ndarray,
    ids: np.ndarray,
    cand_values: np.ndarray,
    cand_ids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge candidate columns into (m, k) neighbor lists; returns new arrays.

    ``cand_ids`` may be 1-D of length ``n_b`` (shared across rows — the
    common case where a tile of the distance matrix shares its reference
    columns) or 2-D of shape ``(m, n_b)``.
    """
    values = np.asarray(values, dtype=np.float64)
    cand_values = np.asarray(cand_values, dtype=np.float64)
    if values.ndim != 2 or cand_values.ndim != 2:
        raise ValidationError("values and cand_values must be 2-D")
    m, k = values.shape
    if cand_values.shape[0] != m:
        raise ValidationError(
            f"candidate rows {cand_values.shape[0]} != list rows {m}"
        )
    cand_ids = np.asarray(cand_ids)
    if cand_ids.ndim == 1:
        cand_ids = np.broadcast_to(cand_ids, cand_values.shape)
    merged_values = np.concatenate([values, cand_values], axis=1)
    merged_ids = np.concatenate([ids, cand_ids], axis=1)
    if k < merged_values.shape[1]:
        part = np.argpartition(merged_values, k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(
            np.arange(merged_values.shape[1]), merged_values.shape
        )
    rows = np.arange(m)[:, None]
    return merged_values[rows, part], merged_ids[rows, part]


@dataclass
class BlockUpdateStats:
    """Tallies of the early-discard filter's effectiveness.

    ``rows_offered`` / ``rows_merged`` count row-tiles seen vs. row-tiles
    that had at least one surviving candidate; their gap is distance data
    discarded straight from "registers" (never concatenated, never
    partitioned) — the memory saving at the heart of Var#1.
    """

    rows_offered: int = 0
    rows_merged: int = 0
    candidates_offered: int = 0
    candidates_surviving: int = 0

    @property
    def discard_fraction(self) -> float:
        """Fraction of candidate distances rejected by the root filter."""
        if self.candidates_offered == 0:
            return 0.0
        return 1.0 - self.candidates_surviving / self.candidates_offered


class BatchedNeighborLists:
    """(m, k) neighbor lists updated tile-by-tile with a root filter.

    This is the structure the fused numpy kernel threads through
    Algorithm 2.2's loop nest: ``update`` consumes one tile of squared
    distances (a row-slice of queries x a column-block of references) and
    folds it into the retained lists.
    """

    def __init__(self, m: int, k: int) -> None:
        if m < 1 or k < 1:
            raise ValidationError(f"need m >= 1 and k >= 1, got m={m}, k={k}")
        self.m = int(m)
        self.k = int(k)
        self.values = np.full((m, k), np.inf, dtype=np.float64)
        self.ids = np.full((m, k), -1, dtype=np.intp)
        # Per-row heap root: the largest retained distance.
        self.row_max = np.full(m, np.inf, dtype=np.float64)
        # Rows that have absorbed at least one tile; cold rows take the
        # cheap direct-assign path (nothing to merge with).
        self._touched = np.zeros(m, dtype=bool)
        self.stats = BlockUpdateStats()

    def update(
        self,
        row_start: int,
        cand_values: np.ndarray,
        cand_ids: np.ndarray,
    ) -> None:
        """Fold a (m_b, n_b) tile of candidates into rows starting at ``row_start``.

        ``cand_ids`` is the length-``n_b`` global reference-id vector for
        the tile's columns.
        """
        cand_values = np.asarray(cand_values, dtype=np.float64)
        if cand_values.ndim != 2:
            raise ValidationError("candidate tile must be 2-D")
        m_b, n_b = cand_values.shape
        if row_start < 0 or row_start + m_b > self.m:
            raise ValidationError(
                f"rows [{row_start}, {row_start + m_b}) out of range for m={self.m}"
            )
        cand_ids = np.asarray(cand_ids, dtype=np.intp).ravel()
        if cand_ids.size != n_b:
            raise ValidationError(
                f"tile has {n_b} columns but {cand_ids.size} reference ids"
            )
        rows = slice(row_start, row_start + m_b)

        # Root filter, stage 1: a row whose *best* candidate does not beat
        # its current max is discarded whole — the vector analogue of
        # rejecting at the heap root, at one reduction's cost and with no
        # boolean allocation.
        thresholds = self.row_max[rows]
        self.stats.rows_offered += m_b
        self.stats.candidates_offered += m_b * n_b
        if self._touched[rows].any():
            row_min = cand_values.min(axis=1)
            live_rows = np.flatnonzero(row_min < thresholds)
        else:
            # every target row is cold (all thresholds +inf): the filter
            # cannot reject anything, so skip its reduction pass entirely
            live_rows = np.arange(m_b)
        if live_rows.size == 0:
            return
        self.stats.rows_merged += live_rows.size
        live = cand_values[live_rows] if live_rows.size < m_b else cand_values

        # Stage 2: per surviving row, pre-select the k best of the block
        # (only they can possibly enter a k-slot list), then merge the
        # narrow (k + k_b) strip instead of the whole block width.
        k_b = min(self.k, n_b)
        if k_b < n_b:
            part = np.argpartition(live, k_b - 1, axis=1)[:, :k_b]
        else:
            part = np.broadcast_to(np.arange(n_b), live.shape)
        sub_rows = np.arange(live.shape[0])[:, None]
        best_values = live[sub_rows, part]
        best_ids = cand_ids[part]
        self.stats.candidates_surviving += int(
            (best_values < thresholds[live_rows, None]).sum()
        )

        abs_rows = live_rows + row_start
        touched = self._touched[abs_rows]
        if not touched.any():
            # Cold rows: the lists hold only +inf sentinels, so the block's
            # k_b best *are* the new lists — no merge needed. This makes
            # the first (and for one-block problems, only) pass as cheap
            # as a direct selection.
            self.values[abs_rows, :k_b] = best_values
            self.ids[abs_rows, :k_b] = best_ids
            if k_b == self.k:
                self.row_max[abs_rows] = best_values.max(axis=1)
            self._touched[abs_rows] = True
            return
        new_values, new_ids = merge_block(
            self.values[abs_rows],
            self.ids[abs_rows],
            best_values,
            best_ids,
        )
        self.values[abs_rows] = new_values
        self.ids[abs_rows] = new_ids
        # Never loosen the threshold: a warm-started row_max (seeded from
        # a caller's existing lists) and the running kth both upper-bound
        # the true merged kth distance, so their min is the tightest safe
        # filter.
        self.row_max[abs_rows] = np.minimum(
            self.row_max[abs_rows], new_values.max(axis=1)
        )
        self._touched[abs_rows] = True

    def sorted(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, ids), each row ascending by distance."""
        order = np.argsort(self.values, axis=1, kind="stable")
        rows = np.arange(self.m)[:, None]
        return self.values[rows, order], self.ids[rows, order]

    def is_complete(self) -> bool:
        """True when every slot has been filled with a real candidate."""
        return bool((self.ids >= 0).all())


class ArenaNeighborLists(BatchedNeighborLists):
    """Arena-backed lists with threshold-masked survivor extraction.

    The plan path's selection structure. Two differences from the base
    class, neither observable in the results:

    * all state (``values``/``ids``/``row_max``/``_touched``) lives in a
      :class:`~repro.core.arena.WorkspaceArena`, so repeated executions
      reuse the same buffers instead of reallocating per call;
    * when *every* target row of a tile is warm (touched, with a finite
      threshold), ``update`` switches from the copy-and-partition path
      to a masked one: a single vectorized ``tile < threshold`` compare
      extracts the few surviving ``(row, col)`` pairs, and only those
      are merged. On warm repeated queries almost nothing survives, so
      the per-tile cost collapses from O(m_b n_b) selection work to one
      compare pass. Cold or partially-warm tiles fall back to the base
      path unchanged.

    Equivalence: a candidate at or above its row's threshold can never
    enter the final k (the threshold upper-bounds the row's kth
    distance), so dropping it before the merge instead of after is
    lossless; both paths retain the same multiset of (distance, id)
    pairs, and the stable final sort makes the output identical
    whenever distances are tie-free (ties are broken arbitrarily, as
    documented for the heaps).
    """

    def __init__(self, m: int, k: int, arena) -> None:
        if m < 1 or k < 1:
            raise ValidationError(f"need m >= 1 and k >= 1, got m={m}, k={k}")
        self.m = int(m)
        self.k = int(k)
        self._arena = arena
        self.values = arena.take_c("lists.values", (m, k), np.float64)
        self.values.fill(np.inf)
        self.ids = arena.take_c("lists.ids", (m, k), np.intp)
        self.ids.fill(-1)
        self.row_max = arena.take_c("lists.row_max", (m,), np.float64)
        self.row_max.fill(np.inf)
        self._touched = arena.take_c("lists.touched", (m,), np.bool_)
        self._touched.fill(False)
        self._dedup = False
        # set when a dedup overwrite actually changed a seeded value —
        # the zero-survivor shortcut must not return the stale seed then
        self._seed_dirty = False
        self.stats = BlockUpdateStats()

    def seed(self, distances: np.ndarray, indices: np.ndarray) -> None:
        """Fold fully-finite warm lists into the structure itself.

        Updates then merge candidates *into* the seed, so the caller's
        final dedup-merge pass against the seed becomes unnecessary —
        the merge happens incrementally, only on rows a tile actually
        improves. Requires every seeded distance finite (every row a
        complete list) and unique reference ids per tile, the solvers'
        case; seeding switches the masked path into dedup mode, because
        a candidate that already sits in a row's list (same id, same
        distance — both produced by the exact kernel over one table)
        must not enter twice.
        """
        if distances.shape != (self.m, self.k):
            raise ValidationError(
                f"seed must be shape ({self.m}, {self.k}), got {distances.shape}"
            )
        self.values[:] = distances
        self.ids[:] = indices
        np.max(distances, axis=1, out=self.row_max)
        self._touched.fill(True)
        self._dedup = True

    def update(
        self,
        row_start: int,
        cand_values: np.ndarray,
        cand_ids: np.ndarray,
    ) -> None:
        cand_values = np.asarray(cand_values, dtype=np.float64)
        if cand_values.ndim != 2:
            raise ValidationError("candidate tile must be 2-D")
        m_b, n_b = cand_values.shape
        if row_start < 0 or row_start + m_b > self.m:
            raise ValidationError(
                f"rows [{row_start}, {row_start + m_b}) out of range for m={self.m}"
            )
        rows = slice(row_start, row_start + m_b)
        thresholds = self.row_max[rows]
        if not self._touched[rows].all() or not np.isfinite(thresholds).all():
            # cold or partially-warm rows: the masked path would have to
            # special-case unfilled lists; the base path already handles
            # them optimally (direct assign / narrow merge)
            super().update(row_start, cand_values, cand_ids)
            return
        cand_ids = np.asarray(cand_ids, dtype=np.intp).ravel()
        if cand_ids.size != n_b:
            raise ValidationError(
                f"tile has {n_b} columns but {cand_ids.size} reference ids"
            )
        self.stats.rows_offered += m_b
        self.stats.candidates_offered += m_b * n_b

        # Stage 1 (same reduction as the base class): drop whole rows whose
        # best candidate cannot beat the threshold, and restrict the mask
        # to the survivors — in the sparse regime (tree iteration 2+, warm
        # repeats) this keeps the boolean pass off most of the tile.
        row_min = cand_values.min(axis=1)
        live = np.flatnonzero(row_min < thresholds)
        if live.size == 0:
            return
        if 2 * live.size >= m_b:
            # dense-live tile: a dead row contributes no survivors anyway
            # (its minimum already failed), so mask the whole tile and
            # skip the O(m_b * n_b) subset copy
            target, thr, subset = cand_values, thresholds, False
        else:
            target, thr, subset = cand_values[live], thresholds[live], True
        mask = self._arena.take_c("lists.mask", target.shape, np.bool_)
        np.less(target, thr[:, None], out=mask)
        # flatnonzero on the dense mask is several times faster than the
        # generic 2-D nonzero, and divmod keeps the same row-major order
        flat = np.flatnonzero(mask)
        surv_rows, surv_cols = np.divmod(flat, n_b)
        if subset:
            # map subset positions back to tile rows; `live` is ascending,
            # so row-major grouping is preserved
            surv_rows = live[surv_rows]
        if surv_rows.size == 0:
            return
        if self._dedup:
            # Seeded lists: a survivor whose id is already retained must
            # not enter the merge twice. Its freshly computed distance
            # overwrites the seed's copy in place (recomputing a pair in
            # a different block can shift the BLAS reduction order by an
            # ulp; the legacy dedup-merge keeps the fresh value, so the
            # fold does too), then the candidate is dropped. Done before
            # the row grouping so rows_merged stays an honest count and
            # the caller's zero-survivor shortcut keeps firing.
            abs_r = surv_rows + row_start
            eq = self.ids[abs_r] == cand_ids[surv_cols][:, None]
            dup = eq.any(axis=1)
            if dup.any():
                fresh = cand_values[surv_rows[dup], surv_cols[dup]]
                at = (abs_r[dup], eq.argmax(axis=1)[dup])
                if not self._seed_dirty and (self.values[at] != fresh).any():
                    self._seed_dirty = True
                self.values[at] = fresh
                keep = ~dup
                surv_rows = surv_rows[keep]
                surv_cols = surv_cols[keep]
                if surv_rows.size == 0:
                    return
        # row-major order: rows ascending, columns ascending within a
        # row — survivors group by row without sorting
        live_rows, counts = np.unique(surv_rows, return_counts=True)
        self.stats.rows_merged += int(live_rows.size)
        self.stats.candidates_surviving += int(surv_rows.size)

        # Scatter the ragged survivors into a dense (live, width) strip
        # padded with +inf/-1 (absorbed harmlessly by the merge), then
        # merge that narrow strip instead of the whole tile.
        width = int(counts.max())
        nlive = int(live_rows.size)
        pad_values = self._arena.take_c(
            "lists.pad_values", (nlive, width), np.float64
        )
        pad_values.fill(np.inf)
        pad_ids = self._arena.take_c("lists.pad_ids", (nlive, width), np.intp)
        pad_ids.fill(-1)
        ends = np.cumsum(counts)
        pos = np.arange(surv_rows.size) - np.repeat(ends - counts, counts)
        row_of = np.repeat(np.arange(nlive), counts)
        pad_values[row_of, pos] = cand_values[surv_rows, surv_cols]
        pad_ids[row_of, pos] = cand_ids[surv_cols]

        abs_rows = live_rows + row_start
        new_values, new_ids = merge_block(
            self.values[abs_rows], self.ids[abs_rows], pad_values, pad_ids
        )
        self.values[abs_rows] = new_values
        self.ids[abs_rows] = new_ids
        self.row_max[abs_rows] = np.minimum(
            self.row_max[abs_rows], new_values.max(axis=1)
        )
