"""The §4 headline — "up to 5x more efficient than the GEMM kernel for
d ∈ [10, 100]", and the abstract's "over 4 times faster" for k = 16,
d = 64 inside the tree solver.

Reproduced as a sweep of the kernel-level speedup over d ∈ [8, 128] for
k ∈ {16, 128}: the *peak* speedup and its location are reported, and
the shape requirement (the best speedup lives in the low-d band) is
asserted. The model's predicted ratio at paper scale is printed next to
the measured ratio at host scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gsknn import gsknn
from repro.core.ref_kernel import ref_knn
from repro.model import PerformanceModel

from .conftest import run_report, SCALE, best_time, uniform_problem

SIZE = 2048 * SCALE
DIMS = [8, 16, 32, 64, 128, 512]
KS = [16, 128]


def _speedups(k):
    out = {}
    for d in DIMS:
        X, q, r = uniform_problem(SIZE, SIZE, d, seed=0)
        t_ours = best_time(lambda: gsknn(X, q, r, k), repeats=3)
        t_ref = best_time(lambda: ref_knn(X, q, r, k), repeats=3)
        out[d] = t_ref / t_ours
    return out


def test_headline_rows(benchmark, report):
    def _run():
        model = PerformanceModel()
        rep = report(
            "headline_speedup",
            f"Headline speedup sweep (m=n={SIZE}; T_gemm / T_gsknn)\n"
            f"{'series':>18} " + "".join(f"{f'd={d}':>8}" for d in DIMS),
        )
        rep.problem(m=SIZE, n=SIZE, dims=DIMS, ks=KS)
        for k in KS:
            measured = _speedups(k)
            rep.row(
                f"{f'k={k} measured':>18} "
                + "".join(f"{measured[d]:>8.2f}" for d in DIMS)
            )
            modeled = {
                d: model.speedup_over_gemm("var1", 8192, 8192, d, k) for d in DIMS
            }
            rep.row(
                f"{f'k={k} model@8192':>18} "
                + "".join(f"{modeled[d]:>8.2f}" for d in DIMS)
            )
            best_d = max(measured, key=measured.get)
            rep.row(
                f"  k={k}: peak measured speedup {measured[best_d]:.2f}x at d={best_d}"
            )
            for d in DIMS:
                rep.metric(f"k{k}.d{d}.speedup", measured[d])
                rep.data_row(
                    k=k, d=d, measured_speedup=measured[d],
                    model_speedup_at_8192=modeled[d],
                )
            rep.metric(f"k{k}.peak_speedup", measured[best_d])
            # location of the peak, not a quality — name carries no
            # polarity token so compare_runs treats moves as neutral
            rep.metric(f"k{k}.peak_d", best_d)


    run_report(benchmark, _run)


class TestHeadlineShape:
    def test_speedup_exceeds_one_in_low_d_band(self):
        speedups = _speedups(16)
        assert max(speedups[d] for d in (8, 16, 32, 64)) > 1.0

    def test_peak_speedup_is_in_low_d_band(self):
        """'especially well for small k, d in [10, 100]': the best ratio
        must not be at d=512."""
        speedups = _speedups(16)
        best_d = max(speedups, key=speedups.get)
        assert best_d <= 128

    def test_model_predicts_five_x_class_speedup_at_paper_scale(self):
        """At the paper's sizes and constants the model itself yields the
        ~5x class advantage in the low-d band."""
        model = PerformanceModel()
        peak = max(
            model.speedup_over_gemm("var1", 8192, 8192, d, 16)
            for d in range(10, 101, 10)
        )
        assert peak > 3.0
