"""Unit tests for reference GEMMs and flop accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gemm import blas_gemm, naive_gemm
from repro.gemm.reference import gemm_flops


def test_blas_matches_naive(rng):
    A, B = rng.random((5, 4)), rng.random((4, 6))
    np.testing.assert_allclose(blas_gemm(A, B), naive_gemm(A, B), atol=1e-12)


def test_blas_alpha_beta(rng):
    A, B, C = rng.random((2, 3)), rng.random((3, 2)), rng.random((2, 2))
    got = blas_gemm(A, B, C, alpha=0.5, beta=2.0)
    np.testing.assert_allclose(got, 0.5 * A @ B + 2.0 * C, atol=1e-12)


def test_blas_beta_zero_ignores_c(rng):
    A, B = rng.random((2, 2)), rng.random((2, 2))
    got = blas_gemm(A, B, np.full((2, 2), np.nan), beta=0.0)
    assert np.isfinite(got).all()


def test_blas_c_shape_checked(rng):
    with pytest.raises(ValidationError):
        blas_gemm(rng.random((2, 2)), rng.random((2, 2)), np.ones((3, 3)), beta=1.0)


def test_gemm_flops():
    assert gemm_flops(2, 3, 4) == 2 * 2 * 3 * 4


def test_operands_must_be_2d():
    with pytest.raises(ValidationError):
        blas_gemm(np.ones(3), np.ones((3, 2)))
