"""Hoare quickselect (paper §2.2, "Quick select").

Partition-based selection with O(n + k) average complexity but a large
constant and an O((n+k)^2) worst case. The paper rejects it for embedding
in the GEMM loop hierarchy because updating an existing neighbor list
costs O(n + k) even in the best case (the list and candidates must be
concatenated and re-partitioned) — there is no O(1) reject path like the
heap root filter. It is implemented here as a baseline so Table 3's
measured complexities include all three families.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .counters import SelectionStats

__all__ = ["quickselect_smallest", "quickselect_update"]


def _partition(
    values: np.ndarray,
    ids: np.ndarray,
    lo: int,
    hi: int,
    stats: SelectionStats,
) -> int:
    """Lomuto partition of values[lo:hi+1] around a median-of-three pivot."""
    mid = (lo + hi) // 2
    # median-of-three pivot selection guards against sorted inputs
    stats.comparisons += 3
    trio = sorted((lo, mid, hi), key=lambda i: values[i])
    pivot_idx = trio[1]
    values[pivot_idx], values[hi] = values[hi], values[pivot_idx]
    ids[pivot_idx], ids[hi] = ids[hi], ids[pivot_idx]
    stats.moves += 6
    pivot = values[hi]
    store = lo
    for i in range(lo, hi):
        stats.comparisons += 1
        stats.sequential_accesses += 1
        if values[i] < pivot:
            if i != store:
                values[store], values[i] = values[i], values[store]
                ids[store], ids[i] = ids[i], ids[store]
                stats.moves += 6
            store += 1
    values[store], values[hi] = values[hi], values[store]
    ids[store], ids[hi] = ids[hi], ids[store]
    stats.moves += 6
    return store


def quickselect_smallest(
    values: np.ndarray,
    k: int,
    *,
    stats: SelectionStats | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest values (and positions), sorted ascending.

    Operates on a private copy; the input array is not modified.
    """
    values = np.asarray(values, dtype=np.float64).ravel().copy()
    if k < 1 or k > values.size:
        raise ValidationError(f"k must be in [1, {values.size}], got {k}")
    stats = stats if stats is not None else SelectionStats()
    ids = np.arange(values.size, dtype=np.intp)

    lo, hi = 0, values.size - 1
    target = k - 1
    while lo < hi:
        p = _partition(values, ids, lo, hi, stats)
        if p == target:
            break
        if p < target:
            lo = p + 1
        else:
            hi = p - 1

    prefix_order = np.argsort(values[:k], kind="stable")
    return values[:k][prefix_order].copy(), ids[:k][prefix_order].copy()


def quickselect_update(
    current_values: np.ndarray,
    current_ids: np.ndarray,
    cand_values: np.ndarray,
    cand_ids: np.ndarray,
    *,
    stats: SelectionStats | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Update a k-neighbor list with ``n`` candidates via quickselect.

    This is the concatenate-then-select scheme the paper describes: the
    existing list and the candidates are merged into one length n+k array
    and the new k-th element found by partitioning — hence the O(n + k)
    best case that disqualifies quickselect for small-n embedding.
    """
    current_values = np.asarray(current_values, dtype=np.float64).ravel()
    current_ids = np.asarray(current_ids, dtype=np.intp).ravel()
    if current_values.shape != current_ids.shape:
        raise ValidationError("neighbor values/ids shape mismatch")
    k = current_values.size
    merged_values = np.concatenate([current_values, np.asarray(cand_values, dtype=np.float64).ravel()])
    merged_ids = np.concatenate([current_ids, np.asarray(cand_ids, dtype=np.intp).ravel()])
    stats = stats if stats is not None else SelectionStats()
    stats.sequential_accesses += merged_values.size
    values, positions = quickselect_smallest(merged_values, k, stats=stats)
    return values, merged_ids[positions]
