"""Approximate serving: per-request recall targets through the service."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import (
    OperatingPoint,
    PlannerCalibration,
    QueryPlanner,
    build_graph_index,
)
from repro.core.neighbors import KnnResult, recall
from repro.errors import ValidationError
from repro.serve import KnnQueryService, ServeConfig
from repro.trees.allknn import exact_all_knn


@pytest.fixture(scope="module")
def big_table():
    return np.random.default_rng(9).standard_normal((1024, 8))


@pytest.fixture(scope="module")
def big_truth(big_table):
    return exact_all_knn(big_table, 10)


@pytest.fixture(scope="module")
def index(big_table):
    return build_graph_index(big_table, k_build=16, seed=0)


@pytest.fixture(scope="module")
def planner(big_table):
    cal = PlannerCalibration(
        n=big_table.shape[0],
        d=big_table.shape[1],
        k=10,
        m_queries=32,
        exact_query_seconds=0.01,
        model_ratio=1.0,
        graph_build_seconds=0.5,
        points=[
            OperatingPoint(
                method="graph",
                workload="query",
                params={"ef": 32, "expand": 4, "max_hops": None},
                recall=0.97,
                query_seconds=1e-6,
            )
        ],
    )
    return QueryPlanner(cal)


@pytest.fixture
def svc(big_table, index, planner):
    config = ServeConfig(max_wait_ms=0.5, recall_sample_every=1)
    with KnnQueryService(
        big_table, config, graph_index=index, planner=planner
    ) as service:
        yield service


class TestRouting:
    def test_no_target_stays_exact(self, svc, big_truth):
        result = svc.submit([3, 40], k=10).result(10)
        np.testing.assert_array_equal(
            result.indices, big_truth.indices[[3, 40]]
        )

    def test_target_routes_through_graph(self, svc, big_truth):
        q = np.arange(64)
        result = svc.submit(q, k=10, recall_target=0.9).result(10)
        truth = KnnResult(big_truth.distances[q], big_truth.indices[q])
        assert recall(result, truth) >= 0.9

    def test_rows_request_routes_too(self, svc, big_table, big_truth):
        result = svc.submit_rows(
            big_table[10:20], k=10, recall_target=0.9
        ).result(10)
        truth = KnnResult(
            big_truth.distances[10:20], big_truth.indices[10:20]
        )
        assert recall(result, truth) >= 0.9

    def test_mixed_window_demuxes_correctly(self, svc, big_truth):
        exact_h = svc.submit([7], k=10)
        approx_h = svc.submit([7], k=10, recall_target=0.9)
        exact_res = exact_h.result(10)
        approx_res = approx_h.result(10)
        np.testing.assert_array_equal(
            exact_res.indices, big_truth.indices[[7]]
        )
        truth = KnnResult(big_truth.distances[[7]], big_truth.indices[[7]])
        assert recall(approx_res, truth) >= 0.9

    def test_bad_target_rejected_synchronously(self, svc):
        with pytest.raises(ValidationError):
            svc.submit([1], k=5, recall_target=1.5)

    def test_effectively_exact_target_solves_exactly(self, svc, big_truth):
        result = svc.submit([5, 6], k=10, recall_target=0.9999).result(10)
        np.testing.assert_array_equal(
            result.indices, big_truth.indices[[5, 6]]
        )


class TestFallbacks:
    def test_no_calibration_serves_exactly(
        self, big_table, index, big_truth, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_PLANNER_CACHE", str(tmp_path / "absent.json")
        )
        with KnnQueryService(
            big_table, ServeConfig(max_wait_ms=0.5), graph_index=index
        ) as service:
            result = service.submit([2, 3], k=10, recall_target=0.9).result(10)
        np.testing.assert_array_equal(
            result.indices, big_truth.indices[[2, 3]]
        )

    def test_no_index_serves_exactly(self, big_table, big_truth, planner):
        with KnnQueryService(
            big_table, ServeConfig(max_wait_ms=0.5), planner=planner
        ) as service:
            result = service.submit([2, 3], k=10, recall_target=0.9).result(10)
        np.testing.assert_array_equal(
            result.indices, big_truth.indices[[2, 3]]
        )

    def test_k_beyond_graph_width_serves_exactly(self, svc, big_table):
        # k > k_build cannot come from the graph's lists: exact path
        result = svc.submit([1], k=32, recall_target=0.9).result(10)
        truth = exact_all_knn(big_table, 32)
        np.testing.assert_array_equal(result.indices, truth.indices[[1]])

    def test_mismatched_table_rejected(self, big_table, index):
        with pytest.raises(ValidationError):
            KnnQueryService(big_table[:100], graph_index=index)


class TestObservability:
    def test_approx_metrics(self, big_table, index, planner, metrics):
        config = ServeConfig(max_wait_ms=0.5, recall_sample_every=1)
        with KnnQueryService(
            big_table, config, graph_index=index, planner=planner
        ) as service:
            service.submit(np.arange(32), k=10, recall_target=0.9).result(10)
        snap = metrics.snapshot()
        assert any(
            name.startswith("serve.approx_requests")
            for name in snap["counters"]
        )
        achieved = snap["gauges"].get("approx.achieved_recall")
        assert achieved is not None
        assert achieved >= 0.9

    def test_default_recall_target_from_config(
        self, big_table, index, planner, metrics
    ):
        config = ServeConfig(
            max_wait_ms=0.5, default_recall_target=0.9, recall_sample_every=0
        )
        with KnnQueryService(
            big_table, config, graph_index=index, planner=planner
        ) as service:
            service.submit([4], k=10).result(10)
        snap = metrics.snapshot()
        assert any(
            name.startswith("serve.approx_requests")
            for name in snap["counters"]
        )
