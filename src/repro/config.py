"""Blocking-parameter configuration shared by the GEMM and GSKNN kernels.

The Goto partitioning is controlled by five architecture-dependent block
sizes (paper §2.3/§2.4):

======  =============================================================
``n_c``  6th loop: reference-block width; ``R_c`` sized to fit in L3.
``d_c``  5th loop: depth (dimension) block; ``m_r x d_c + n_r x d_c``
         sized to ~3/4 of L1 so both micro-panels stream through it.
``m_c``  4th loop: query-block height; ``Q_c`` sized to ~3/4 of L2.
``n_r``  3rd loop: register block width of a micro-kernel tile.
``m_r``  2nd loop: register block height of a micro-kernel tile.
======  =============================================================

The paper's Ivy Bridge instance (§3) is ``m_r=8, n_r=4, d_c=256,
m_c=104, n_c=4096``, exposed as :data:`IVY_BRIDGE_BLOCKING`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .errors import ConfigurationError

__all__ = ["BlockingParams", "IVY_BRIDGE_BLOCKING", "TEST_BLOCKING", "iter_blocks"]


def iter_blocks(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, size)`` pairs covering ``[0, total)`` in ``block`` steps.

    The final pair is ragged when ``block`` does not divide ``total`` —
    the "edge case" the paper handles with a separate intrinsics kernel.
    """
    for start in range(0, total, block):
        yield start, min(block, total - start)


@dataclass(frozen=True)
class BlockingParams:
    """The five Goto block sizes. Immutable and validated on construction."""

    m_r: int
    n_r: int
    d_c: int
    m_c: int
    n_c: int

    def __post_init__(self) -> None:
        for name in ("m_r", "n_r", "d_c", "m_c", "n_c"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"blocking parameter {name} must be a positive int, got {value!r}"
                )
        if self.m_r > self.m_c:
            raise ConfigurationError(
                f"m_r={self.m_r} cannot exceed m_c={self.m_c}"
            )
        if self.n_r > self.n_c:
            raise ConfigurationError(
                f"n_r={self.n_r} cannot exceed n_c={self.n_c}"
            )

    def packed_q_bytes(self) -> int:
        """Size of one packed ``Q_c`` buffer (float64)."""
        return 8 * self.m_c * self.d_c

    def packed_r_bytes(self) -> int:
        """Size of one packed ``R_c`` buffer (float64)."""
        return 8 * self.n_c * self.d_c

    def micropanel_bytes(self) -> int:
        """Bytes of one ``m_r`` plus one ``n_r`` micro-panel at depth ``d_c``."""
        return 8 * self.d_c * (self.m_r + self.n_r)

    def with_m_c(self, m_c: int) -> "BlockingParams":
        """Copy with a different ``m_c`` (dynamic load-balancing, §2.5)."""
        return BlockingParams(self.m_r, self.n_r, self.d_c, m_c, self.n_c)


#: The paper's Ivy Bridge parameters (§3): Q_c = 104*256*8 = 208 KiB,
#: R_c = 4096*256*8 = 8 MiB.
IVY_BRIDGE_BLOCKING = BlockingParams(m_r=8, n_r=4, d_c=256, m_c=104, n_c=4096)

#: Small blocks that force multiple iterations of every loop on tiny test
#: problems, so unit tests exercise all block boundaries and ragged edges.
TEST_BLOCKING = BlockingParams(m_r=2, n_r=2, d_c=3, m_c=4, n_c=5)
