"""Batch kNN: many independent kernels, model-scheduled (§2.5).

The approximate solvers generate exactly this workload — hundreds of
small (m, n, k) kernels with no dependencies — and §2.5 prescribes the
treatment: estimate each kernel's runtime with the §2.6 model, sort
descending, and greedily assign to the least-loaded worker (LPT). This
module makes that a public API instead of driver-internal machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..model.perf_model import PerformanceModel
from ..obs import trace as _trace
from ..parallel.scheduler import ScheduledTask, execute_schedule, lpt_schedule
from ..validation import as_coordinate_table, check_finite
from .gsknn import gsknn
from .neighbors import KnnResult
from .norm_cache import cached_squared_norms
from .norms import Norm

__all__ = ["KnnProblem", "gsknn_batch", "reset_plan_cache"]

#: Backends gsknn_batch can schedule onto. ``processes`` is rejected by
#: the schedule executor (arbitrary closures break its zero-copy
#: contract), so it is rejected here too — early, with a clear message.
_ALLOWED_BACKENDS = ("threads", "serial")

#: Shared across batches: a later call over the same table and reference
#: sets reuses the earlier call's plans (panels + arenas). Lazy so the
#: plan module only loads when batching is actually used.
_PLAN_CACHE = None


def _get_plan_cache():
    global _PLAN_CACHE
    if _PLAN_CACHE is None:
        from .plan import PlanCache

        _PLAN_CACHE = PlanCache(max_plans=32)
    return _PLAN_CACHE


def reset_plan_cache() -> None:
    """Drop the module-global plan cache (test isolation / memory reclaim).

    Callers that passed their own ``plan_cache=`` to :func:`gsknn_batch`
    are unaffected — this only clears the default shared cache.
    """
    global _PLAN_CACHE
    if _PLAN_CACHE is not None:
        _PLAN_CACHE.clear()
    _PLAN_CACHE = None


def _as_problem_indices(idx: np.ndarray, name: str) -> np.ndarray:
    """Coerce a problem index array to ``intp`` without silent truncation.

    The table size is unknown at :class:`KnnProblem` construction (the
    upper bound is checked by :func:`gsknn_batch` against the actual
    table), but everything size-independent is enforced here: 1-D,
    non-empty, non-negative, and integer-valued — float arrays are
    accepted only when every value is a whole number inside the dtype's
    exact-integer range, mirroring
    :func:`repro.validation.as_index_array`.
    """
    arr = np.asarray(idx)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError(f"{name} must be non-empty 1-D")
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.issubdtype(arr.dtype, np.floating):
            raise ValidationError(
                f"{name} must be an integer index array, got dtype {arr.dtype}"
            )
        if not np.isfinite(arr).all():
            raise ValidationError(
                f"{name} contains non-finite values; cannot be coerced to "
                "integer indices"
            )
        exact_bound = 2.0 ** (np.finfo(arr.dtype).nmant + 1)
        if np.abs(arr).max() >= exact_bound:
            raise ValidationError(
                f"{name} has float magnitude beyond {arr.dtype}'s exact "
                "integer range; pass an integer dtype array instead"
            )
        if not np.all(arr == np.trunc(arr)):
            raise ValidationError(
                f"{name} contains non-integral float values; indices must "
                "be whole numbers"
            )
    out = np.ascontiguousarray(arr, dtype=np.intp)
    if out.min() < 0:
        raise ValidationError(f"{name} contains negative indices")
    return out


@dataclass(frozen=True)
class KnnProblem:
    """One kernel invocation of a batch: indices into the shared table."""

    q_idx: np.ndarray
    r_idx: np.ndarray
    k: int

    def __post_init__(self) -> None:
        q = _as_problem_indices(self.q_idx, "q_idx")
        r = _as_problem_indices(self.r_idx, "r_idx")
        if not 1 <= self.k <= r.size:
            raise ValidationError(
                f"k={self.k} out of range for {r.size} references"
            )
        object.__setattr__(self, "q_idx", q)
        object.__setattr__(self, "r_idx", r)


def gsknn_batch(
    X: np.ndarray,
    problems: list[KnnProblem],
    *,
    p: int | str = 1,
    norm: str | float | Norm = "l2",
    variant: int | str = "auto",
    backend: str = "threads",
    plan_reuse: bool = True,
    plan_cache=None,
    request=None,
    memory_budget=None,
) -> list[KnnResult]:
    """Solve a batch of independent kNN kernels over one coordinate table.

    Results are returned in problem order. With ``p > 1`` the kernels
    are LPT-scheduled by model-estimated runtime onto ``p`` workers of
    the chosen execution ``backend`` (``"threads"`` or ``"serial"``);
    the squared-norm side table is shared across the batch *and across
    batches* — repeated calls over the same table hit the identity-keyed
    norm cache instead of recomputing the O(N d) pass. With
    ``plan_reuse`` (default) each problem additionally runs through a
    module-shared :class:`~repro.core.plan.PlanCache`: problems that
    repeat a reference set — within this batch or a later one — reuse
    its gathered panels, and every kernel in the batch shares one
    workspace arena pool. Results are identical either way.

    ``plan_cache`` injects a caller-owned
    :class:`~repro.core.plan.PlanCache` so long-lived callers (the
    serving front-end) control cache sizing and lifetime; the default is
    the module-shared cache (reset with :func:`reset_plan_cache`).
    Ignored when ``plan_reuse`` is off.

    ``request`` (a :class:`~repro.obs.context.RequestContext` or bare
    request-id string) tags every span and metric the batch produces;
    without it the ambient request scope (if any) is inherited.

    ``memory_budget`` (a :class:`~repro.MemoryBudget`, byte count, or
    spec string) caps each problem's kernel workspace: budgeted plans
    stream reference panels from ``X`` (memmapped tables work
    unchanged) and charge every workspace buffer against the budget —
    one shared budget object bounds the whole batch; a byte count or
    spec is coerced once here so concurrent problems still share it.
    """
    from .membudget import MemoryBudget
    from ..obs.context import coerce_request, current_request, request_scope
    from ..parallel.chunking import resolve_workers

    if isinstance(backend, str) and backend not in _ALLOWED_BACKENDS:
        raise ValidationError(
            f"backend must be one of {_ALLOWED_BACKENDS}, got {backend!r} "
            "(the processes backend's zero-copy contract does not cover "
            "batch problems)"
        )
    p = resolve_workers(p)
    if not problems:
        return []
    ctx = coerce_request(request) or current_request()
    X = as_coordinate_table(X)
    check_finite(X)
    for prob in problems:
        if prob.q_idx.max() >= X.shape[0] or prob.r_idx.max() >= X.shape[0]:
            raise ValidationError("problem indices exceed the table size")

    norm_obj = norm
    X2 = cached_squared_norms(X)
    budget = MemoryBudget.coerce(memory_budget)
    if plan_reuse:
        plans = plan_cache if plan_cache is not None else _get_plan_cache()
    else:
        plans = None

    def solve(prob: KnnProblem) -> KnnResult:
        if plans is not None:
            plan = plans.get(
                X, prob.r_idx, norm=norm_obj, variant=variant, X2=X2,
                memory_budget=budget,
            )
            return plan.execute(prob.q_idx, prob.k)
        return gsknn(
            X, prob.q_idx, prob.r_idx, prob.k, norm=norm_obj,
            variant=variant, X2=X2, memory_budget=budget,
        )

    with request_scope(ctx):
        if p == 1 or len(problems) == 1:
            return [solve(prob) for prob in problems]

        model = PerformanceModel()
        tasks = [
            ScheduledTask(
                i,
                model.estimate_kernel_runtime(
                    prob.q_idx.size, prob.r_idx.size, X.shape[1], prob.k
                ),
                payload=prob,
            )
            for i, prob in enumerate(problems)
        ]
        schedule = lpt_schedule(tasks, p)
        with _trace.span("batch", problems=len(problems), p=p):
            results = execute_schedule(
                schedule, lambda t: solve(t.payload), backend=backend
            )
        return [results[i] for i in range(len(problems))]
