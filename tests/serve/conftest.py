"""Fixtures for the serving-layer suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.faults import FAULT_PLAN_ENV


@pytest.fixture(autouse=True)
def no_ambient_fault_plan(monkeypatch):
    """Serving tests pin fault behavior explicitly via ``fault_plan=``;
    an ambient ``$REPRO_FAULT_PLAN`` (the CI fault matrix) must not
    leak into services that expect clean solves."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


@pytest.fixture
def table(rng) -> np.ndarray:
    return rng.random((256, 12))


@pytest.fixture
def metrics():
    from repro.obs.metrics import disable_metrics, enable_metrics

    registry = enable_metrics()
    yield registry
    disable_metrics()
