"""Simulated distributed-memory all-NN solver (Table 1's 8-node setting).

The paper's integrated experiment runs a randomized-KD-tree all-NN
solver over MPI on 8 NUMA nodes. This package reproduces that setting
without MPI hardware: a deterministic single-process message-passing
simulation (:mod:`repro.distributed.comm`) carries exact point and
neighbor-list payloads between simulated ranks, an alpha-beta cost
model prices the transfers, and the solver
(:mod:`repro.distributed.solver`) combines measured per-rank kernel
time with modeled communication into a projected multi-node wall
clock. Results are bit-exact against the single-process solver — only
the time is projected.
"""

from .comm import AlphaBetaModel, CommStats, SimComm
from .solver import DistributedAllKnn, DistributedReport

__all__ = [
    "SimComm",
    "CommStats",
    "AlphaBetaModel",
    "DistributedAllKnn",
    "DistributedReport",
]
